"""Unicode-whitespace hygiene at the scrape boundary.

Scanned proceedings and template-generated pages carry NBSPs, zero-width
characters, and soft hyphens inside person names; if those survive into
the records, identity linking forks one researcher into several.  The
scraper must produce names identical to the clean-page scrape no matter
which of these characters the pages picked up.
"""

from __future__ import annotations

import dataclasses
import re

import pytest

from repro.harvest.proceedings import build_proceedings
from repro.harvest.scrape import scrape_site
from repro.harvest.sitegen import generate_site
from repro.names.parsing import clean_person_name, name_key

pytestmark = pytest.mark.contracts

NBSP = "\u00a0"
ZWSP = "\u200b"
ZWJ = "\u200d"
SOFT_HYPHEN = "\u00ad"
BOM = "\ufeff"


class TestCleanPersonName:
    def test_plain_name_unchanged(self):
        assert clean_person_name("Ada Lovelace") == "Ada Lovelace"

    def test_nbsp_collapsed(self):
        assert clean_person_name(f"Ada{NBSP}Lovelace") == "Ada Lovelace"

    def test_zero_width_stripped(self):
        assert clean_person_name(f"Ada{ZWSP} Love{ZWJ}lace") == "Ada Lovelace"

    def test_soft_hyphen_and_bom_stripped(self):
        assert clean_person_name(f"{BOM}Ada Love{SOFT_HYPHEN}lace") == "Ada Lovelace"

    def test_key_stable_under_junk(self):
        dirty = f"{BOM}Ada{NBSP}{ZWSP}Lovelace"
        assert name_key(clean_person_name(dirty)) == name_key("Ada Lovelace")


_TEXT_NODE = re.compile(r">([^<]+)<")


def _pollute(html: str) -> str:
    """Inject NBSP/zero-width junk into every text node's spaces."""
    return _TEXT_NODE.sub(
        lambda m: ">" + m.group(1).replace(" ", f"{NBSP}{ZWSP}") + "<", html
    )


class TestScrapeHygiene:
    @pytest.fixture(scope="class")
    def clean_scrape(self, small_world):
        site = generate_site(small_world.registry, "SC", 2017)
        proceedings = build_proceedings(small_world.registry, "SC", 2017)
        return site, proceedings, scrape_site(site, proceedings)

    def test_polluted_pages_scrape_to_identical_names(self, clean_scrape):
        site, proceedings, clean = clean_scrape
        polluted = dataclasses.replace(
            site,
            committees_html=_pollute(site.committees_html),
            program_html=_pollute(site.program_html),
            papers_html=_pollute(site.papers_html),
        )
        got = scrape_site(polluted, proceedings)
        assert [r.full_name for r in got.roles] == [
            r.full_name for r in clean.roles
        ]
        assert [p.author_names for p in got.papers] == [
            p.author_names for p in clean.papers
        ]

    def test_no_invisible_characters_in_any_scraped_name(self, clean_scrape):
        _site, _proceedings, clean = clean_scrape
        junk = {NBSP, ZWSP, ZWJ, SOFT_HYPHEN, BOM}
        for r in clean.roles:
            assert not junk & set(r.full_name)
        for p in clean.papers:
            for n in p.author_names:
                assert not junk & set(n)
