"""The tabular analysis dataset.

Everything §3–§5 computes comes off four tables (plus conference
metadata), mirroring the study's own R data frames:

- ``researchers``       — one row per unique researcher;
- ``author_positions``  — one row per authorship position (the paper's
  "2,236 authors" denominates positions);
- ``conf_authors``      — one row per (conference, researcher): the
  per-conference unique-author view of Table 1;
- ``papers``            — one row per paper with lead/last gender and
  reception metrics;
- ``conferences``       — per-edition metadata (review policy, diversity
  policies, acceptance).

Gender columns hold 'F', 'M', or missing (None) — missing researchers
are excluded from denominators exactly as in the paper.  The dataset can
be cheaply re-derived under different gender assignments
(:meth:`AnalysisDataset.with_assignments`), which is how the sensitivity
analysis re-runs everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.confmodel.roles import Role
from repro.gender.model import Gender, GenderAssignment
from repro.pipeline.enrich import Enrichment
from repro.pipeline.link import LinkedData
from repro.tabular import Table

__all__ = ["AnalysisDataset"]


def _gender_str(a: GenderAssignment | None) -> str | None:
    if a is None or not a.known:
        return None
    return a.gender.value


@dataclass
class AnalysisDataset:
    """The pipeline's final product; input of every analysis module."""

    researchers: Table
    author_positions: Table
    conf_authors: Table
    papers: Table
    conferences: Table
    role_slots: Table            # non-author roles, one row per seat
    assignments: dict[str, GenderAssignment] = field(default_factory=dict)

    # ------------------------------------------------------------ builders

    @classmethod
    def build(
        cls,
        linked: LinkedData,
        enrichment: dict[str, Enrichment],
        assignments: dict[str, GenderAssignment],
    ) -> "AnalysisDataset":
        gender = {rid: _gender_str(assignments.get(rid)) for rid in linked.researchers}

        # ---- researchers ---------------------------------------------------
        rows = []
        for rid, rec in linked.researchers.items():
            e = enrichment.get(rid)
            a = assignments.get(rid)
            rows.append(
                {
                    "researcher_id": rid,
                    "full_name": rec.full_name,
                    "gender": gender[rid],
                    "gender_method": (a.method.value if a else "none"),
                    "country": e.country_code if e else None,
                    "region": e.region if e else None,
                    "sector": e.sector if e else None,
                    "is_author": rec.is_author,
                    "is_pc": rec.is_pc_member,
                    "gs_pubs": e.gs_publications if e else None,
                    "gs_h": e.gs_h_index if e else None,
                    "gs_i10": e.gs_i10 if e else None,
                    "gs_citations": e.gs_citations if e else None,
                    "s2_pubs": e.s2_publications if e else None,
                    "has_gs": bool(e and e.has_gs),
                }
            )
        researchers = Table.from_records(rows)

        # ---- author positions ------------------------------------------------
        pos_rows = []
        conf_author_pairs: dict[tuple[str, str], dict] = {}
        for paper in linked.papers:
            n = len(paper.author_ids)
            for k, rid in enumerate(paper.author_ids):
                pos_rows.append(
                    {
                        "paper_id": paper.paper_id,
                        "conference": paper.conference,
                        "year": paper.year,
                        "researcher_id": rid,
                        "position": k,
                        "is_first": k == 0,
                        "is_last": n > 1 and k == n - 1,
                        "gender": gender.get(rid),
                    }
                )
                key = (paper.conference, rid)
                if key not in conf_author_pairs:
                    e = enrichment.get(rid)
                    conf_author_pairs[key] = {
                        "conference": paper.conference,
                        "year": paper.year,
                        "researcher_id": rid,
                        "gender": gender.get(rid),
                        "country": e.country_code if e else None,
                        "region": e.region if e else None,
                        "sector": e.sector if e else None,
                    }
        author_positions = Table.from_records(pos_rows)
        conf_authors = Table.from_records(list(conf_author_pairs.values()))

        # ---- papers ------------------------------------------------------------
        paper_rows = []
        for paper in linked.papers:
            first = paper.author_ids[0] if paper.author_ids else None
            last = paper.author_ids[-1] if len(paper.author_ids) > 1 else None
            cites = paper.citations_36mo
            paper_rows.append(
                {
                    "paper_id": paper.paper_id,
                    "conference": paper.conference,
                    "year": paper.year,
                    "num_authors": len(paper.author_ids),
                    "first_author": first,
                    "last_author": last,
                    "first_gender": gender.get(first) if first else None,
                    "last_gender": gender.get(last) if last else None,
                    "citations_36mo": cites,
                    "reaches_i10": (cites >= 10) if cites is not None else None,
                    "is_hpc": paper.is_hpc_topic,
                }
            )
        papers = Table.from_records(paper_rows)

        # ---- conferences -------------------------------------------------------
        conf_rows = []
        for conf in linked.conferences:
            conf_rows.append(
                {
                    "conference": conf.conference,
                    "year": conf.year,
                    "date": conf.date,
                    "country": conf.country,
                    "accepted": conf.accepted,
                    "submitted": conf.submitted,
                    "acceptance_rate": conf.acceptance_rate,
                    "double_blind": conf.review_policy == "double",
                    "diversity_chair": any(
                        "Chair" in p for p in conf.diversity_policies
                    ),
                    "code_of_conduct": any(
                        "Conduct" in p for p in conf.diversity_policies
                    ),
                    "childcare": any("childcare" in p for p in conf.diversity_policies),
                    "demographic_reporting": any(
                        "Demographic" in p for p in conf.diversity_policies
                    ),
                }
            )
        conferences = Table.from_records(conf_rows)

        # ---- role slots (non-author seats, repeats included) ----------------
        slot_rows = []
        for rid, rec in linked.researchers.items():
            e = enrichment.get(rid)
            for conf_name, year, role in rec.roles:
                if role is Role.AUTHOR:
                    continue
                slot_rows.append(
                    {
                        "researcher_id": rid,
                        "conference": conf_name,
                        "year": year,
                        "role": role.value,
                        "gender": gender[rid],
                        "country": e.country_code if e else None,
                        "region": e.region if e else None,
                        "sector": e.sector if e else None,
                    }
                )
        role_slots = Table.from_records(
            slot_rows,
            columns=[
                "researcher_id", "conference", "year", "role",
                "gender", "country", "region", "sector",
            ],
        )

        return cls(
            researchers=researchers,
            author_positions=author_positions,
            conf_authors=conf_authors,
            papers=papers,
            conferences=conferences,
            role_slots=role_slots,
            assignments=dict(assignments),
        )

    # ---------------------------------------------------------- re-derivation

    def with_assignments(
        self, assignments: dict[str, GenderAssignment]
    ) -> "AnalysisDataset":
        """Rebuild all gender columns under different assignments.

        Used by the §2 sensitivity analysis (force unknowns to F, then M)
        — everything except the gender columns is reused as-is.
        """
        gender = {
            rid: _gender_str(assignments.get(rid))
            for rid in self.researchers["researcher_id"]
        }

        def regender(table: Table, id_col: str, out_col: str) -> Table:
            vals = [gender.get(rid) for rid in table[id_col]]
            return table.with_column(out_col, vals)

        researchers = regender(self.researchers, "researcher_id", "gender")
        methods = [
            assignments[rid].method.value if rid in assignments else "none"
            for rid in self.researchers["researcher_id"]
        ]
        researchers = researchers.with_column("gender_method", methods)
        author_positions = regender(self.author_positions, "researcher_id", "gender")
        conf_authors = regender(self.conf_authors, "researcher_id", "gender")
        papers = self.papers
        papers = papers.with_column(
            "first_gender",
            [gender.get(rid) if rid else None for rid in papers["first_author"]],
        )
        papers = papers.with_column(
            "last_gender",
            [gender.get(rid) if rid else None for rid in papers["last_author"]],
        )
        role_slots = regender(self.role_slots, "researcher_id", "gender")
        return AnalysisDataset(
            researchers=researchers,
            author_positions=author_positions,
            conf_authors=conf_authors,
            papers=papers,
            conferences=self.conferences,
            role_slots=role_slots,
            assignments=dict(assignments),
        )

    # ------------------------------------------------------------- shortcuts

    def known_gender_researchers(self) -> Table:
        return self.researchers.filter(lambda t: ~t.col("gender").is_missing())

    def unknown_count(self) -> int:
        return int(self.researchers.col("gender").is_missing().sum())
