"""The unified event log: taxonomy, determinism, adoption, export."""

import json

import pytest

from repro.obs import EVENT_TYPES, Event, EventLog, NullEventLog, ObsContext, write_events
from repro.pipeline import run_pipeline
from repro.util.parallel import ParallelConfig

pytestmark = [pytest.mark.obs, pytest.mark.ledger]


class TestTaxonomy:
    def test_known_type_is_recorded(self):
        log = EventLog()
        ev = log.emit("cache.hit", "ingest", key="abc")
        assert ev.seq == 0 and ev.type == "cache.hit"
        assert log.counts() == {"cache.hit": 1}

    def test_unknown_type_raises(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("cache.hti", "ingest")
        assert len(log) == 0

    def test_taxonomy_covers_every_instrumented_layer(self):
        prefixes = {t.split(".")[0] for t in EVENT_TYPES}
        assert prefixes == {
            "run", "span", "stage", "cache", "checkpoint", "fault", "contract",
            "node", "serve",
        }


class TestIdentity:
    def test_identity_excludes_timing(self):
        a = Event(seq=0, type="cache.hit", name="ingest", attrs={"k": 1}, t=0.5)
        b = Event(seq=0, type="cache.hit", name="ingest", attrs={"k": 1}, t=9.9)
        assert a.identity() == b.identity()

    def test_identity_sorts_attrs(self):
        a = Event(0, "fault.retry", "gs", attrs={"a": 1, "b": 2})
        b = Event(0, "fault.retry", "gs", attrs={"b": 2, "a": 1})
        assert a.identity() == b.identity()

    def test_log_identity_is_sequence_sensitive(self):
        one, two = EventLog(), EventLog()
        one.emit("run.start", "pipeline")
        one.emit("run.end", "pipeline")
        two.emit("run.end", "pipeline")
        two.emit("run.start", "pipeline")
        assert one.identity() != two.identity()


class TestAdoption:
    def test_adopt_resequences_in_adoption_order(self):
        main, worker = EventLog(), EventLog()
        main.emit("run.start", "pipeline")
        worker.emit("fault.retry", "harvest", attempt=2)
        worker.emit("fault.loss", "SC-2017", stage="harvest")
        main.adopt(worker.events)
        assert [e.seq for e in main.events] == [0, 1, 2]
        assert [e.type for e in main.events] == [
            "run.start", "fault.retry", "fault.loss"
        ]

    def test_worker_count_does_not_change_event_identity(self, small_world):
        """The parallel_map capture/adopt discipline: serial == 3 workers."""

        def stream(workers):
            obs = ObsContext(seed=small_world.seed)
            run_pipeline(
                world=small_world,
                obs=obs,
                parallel=ParallelConfig(workers=workers, min_items_per_worker=1)
                if workers
                else None,
                validation="repair",
            )
            return obs.events.identity()

        assert stream(0) == stream(3)


class TestSpanMirroring:
    def test_spans_mirror_into_the_log(self):
        obs = ObsContext(seed=7)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        types = [e.type for e in obs.events.events]
        assert types == ["span.open", "span.open", "span.close", "span.close"]
        names = [e.name for e in obs.events.events]
        assert names == ["outer", "inner", "inner", "outer"]


class TestNullLog:
    def test_null_log_is_inert(self):
        log = NullEventLog()
        assert log.emit("not.even.a.type") is None  # no validation, no cost
        log.adopt([Event(0, "cache.hit", "x")])
        assert len(log) == 0 and log.counts() == {} and log.identity() == ()


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("cache.miss", "enrich", key="deadbeef")
        log.emit("cache.store", "enrich", key="deadbeef")
        path = write_events(log, tmp_path / "events.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "seq": 0,
            "type": "cache.miss",
            "name": "enrich",
            "attrs": {"key": "deadbeef"},
            "t": first["t"],
        }

    def test_timing_can_be_excluded(self, tmp_path):
        log = EventLog()
        log.emit("run.start", "pipeline")
        path = write_events(log, tmp_path / "e.jsonl", include_timing=False)
        assert "\"t\"" not in path.read_text(encoding="utf-8")
