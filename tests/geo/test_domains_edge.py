"""Edge cases for email-domain resolution."""

import pytest

from repro.geo import email_country, split_email
from repro.pipeline.enrich import sector_from_email


class TestCaseHandling:
    def test_uppercase_domain(self):
        assert email_country("X@CS.STANFORD.EDU").cca2 == "US"

    def test_mixed_case_cctld(self):
        assert email_country("a@Univ.Ac.JP").cca2 == "JP"

    def test_whitespace_tolerated(self):
        assert split_email("  a@b.fr  ") == ("a", "b.fr")


class TestSectorHeuristics:
    @pytest.mark.parametrize(
        "email,sector",
        [
            ("a@cs.mit.edu", "EDU"),
            ("a@phys.ox.ac.uk", "EDU"),
            ("a@ornl.gov", "GOV"),
            ("a@lab.gov.de", "GOV"),
            ("a@ibm3.com", "COM"),
            ("a@institute9.org", None),
            ("not-an-email", None),
        ],
    )
    def test_classification(self, email, sector):
        assert sector_from_email(email) == sector

    def test_edu_label_not_substring(self):
        # 'education.io' has no 'edu' LABEL; must not classify as EDU
        assert sector_from_email("a@education.io") is None
