"""Data contracts, quarantine-and-repair, and run integrity auditing.

The paper's conclusions rest on exact hand-curated counts; a
reproduction that silently drops or mangles records produces wrong
numbers without failing.  This package guarantees that every record
crossing a stage boundary is well-formed — or accounted for:

- :mod:`repro.contracts.schema`    — the declarative schema engine
  (field specs, cross-field invariants, machine-readable violations);
- :mod:`repro.contracts.entities`  — the concrete contracts for
  editions, papers, roles, researchers, enrichment rows, and gender
  assignments;
- :mod:`repro.contracts.repair`    — conservative repair heuristics
  (whitespace/encoding cleanup, swapped counts, clamped confidences,
  deduplicated author keys);
- :mod:`repro.contracts.quarantine` — the quarantine store every
  violating record lands in, with disposition and provenance;
- :mod:`repro.contracts.validators` — stage-boundary validators wired
  into the pipeline runner at each hand-off;
- :mod:`repro.contracts.audit`     — the end-of-run integrity audit
  (conservation invariants, FAR cross-checks, category closure).

Select behaviour with :class:`ValidationMode`: ``strict`` fails fast on
the first violation, ``repair`` (the default when validation is on)
repairs or quarantines, ``audit`` only records.
"""

from repro.contracts.audit import (
    AuditCheck,
    ContractReport,
    IntegrityAudit,
    run_integrity_audit,
)
from repro.contracts.entities import (
    ASSIGNMENT_SCHEMA,
    EDITION_SCHEMA,
    ENRICHMENT_SCHEMA,
    PAPER_SCHEMA,
    RESEARCHER_SCHEMA,
    ROLE_SCHEMA,
)
from repro.contracts.quarantine import Disposition, QuarantineEntry, QuarantineStore
from repro.contracts.repair import (
    repair_assignment,
    repair_edition,
    repair_enrichment,
    repair_paper,
    repair_researcher,
    repair_role,
)
from repro.contracts.schema import (
    ContractViolationError,
    FieldSpec,
    Invariant,
    RecordSchema,
    ValidationMode,
    Violation,
)
from repro.contracts.validators import (
    ContractSession,
    validate_assignments,
    validate_enrichment,
    validate_harvest,
    validate_linked,
)

__all__ = [
    "AuditCheck",
    "ContractReport",
    "IntegrityAudit",
    "run_integrity_audit",
    "ASSIGNMENT_SCHEMA",
    "EDITION_SCHEMA",
    "ENRICHMENT_SCHEMA",
    "PAPER_SCHEMA",
    "RESEARCHER_SCHEMA",
    "ROLE_SCHEMA",
    "Disposition",
    "QuarantineEntry",
    "QuarantineStore",
    "repair_assignment",
    "repair_edition",
    "repair_enrichment",
    "repair_paper",
    "repair_researcher",
    "repair_role",
    "ContractViolationError",
    "FieldSpec",
    "Invariant",
    "RecordSchema",
    "ValidationMode",
    "Violation",
    "ContractSession",
    "validate_assignments",
    "validate_enrichment",
    "validate_harvest",
    "validate_linked",
]
