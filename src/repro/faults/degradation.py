"""Degraded-coverage accounting.

The paper's own dataset is a degraded view of reality — 68.3% Google
Scholar coverage, 3.03% unresolved genders — and its analyses reason
over what remains rather than failing.  This module gives the
reproduction the same vocabulary: every work item the resilience layer
gives up on becomes a :class:`LossRecord`, and a pipeline run summarises
them in a :class:`DegradedCoverage` attached to
:class:`~repro.pipeline.runner.PipelineResult`.

``DegradedCoverage`` is plain comparable data on purpose: the
determinism tests assert that two runs with the same fault seed — at
different worker counts — produce *equal* reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LossRecord", "FaultStats", "DegradedCoverage"]


@dataclass(frozen=True)
class LossRecord:
    """One unit of work the pipeline degraded instead of crashing on.

    ``stage`` names the service boundary (``harvest``, ``genderize``,
    ``gscholar``, ``semanticscholar``); ``key`` identifies the edition
    (``"SC-2017"``) or person; ``reason`` is the short tag from
    :attr:`repro.faults.errors.FaultError.reason` (possibly suffixed,
    e.g. ``malformed:truncate-index``).
    """

    stage: str
    key: str
    reason: str


@dataclass
class FaultStats:
    """Mutable per-session counters, mergeable across sessions/tasks."""

    calls: dict[str, int] = field(default_factory=dict)
    faults: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    exhausted: int = 0
    breaker_rejections: int = 0
    breaker_opens: int = 0
    virtual_time: float = 0.0

    def count_call(self, service: str) -> None:
        self.calls[service] = self.calls.get(service, 0) + 1

    def count_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def merge(self, other: "FaultStats") -> None:
        for k, v in other.calls.items():
            self.calls[k] = self.calls.get(k, 0) + v
        for k, v in other.faults.items():
            self.faults[k] = self.faults.get(k, 0) + v
        self.retries += other.retries
        self.exhausted += other.exhausted
        self.breaker_rejections += other.breaker_rejections
        self.breaker_opens += other.breaker_opens
        self.virtual_time += other.virtual_time


@dataclass
class DegradedCoverage:
    """What a run lost to faults, per stage, with full provenance.

    Comparable with ``==``; two runs with the same fault seed must
    produce equal reports regardless of worker count.
    """

    total_editions: int = 0
    harvested_editions: int = 0
    losses: tuple[LossRecord, ...] = ()
    fault_counts: dict[str, int] = field(default_factory=dict)
    service_calls: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    exhausted: int = 0
    breaker_opens: int = 0
    virtual_time: float = 0.0
    resumed_editions: tuple[str, ...] = ()
    # engine-level accounting (supervised DAG execution; PR 6) — empty
    # on the legacy path and on clean engine runs, so reports from the
    # two paths stay equal when nothing went wrong
    failed_nodes: tuple[str, ...] = ()
    skipped_nodes: tuple[str, ...] = ()
    node_retries: int = 0

    @classmethod
    def from_parts(
        cls,
        total_editions: int,
        harvested_editions: int,
        losses: list[LossRecord],
        stats: FaultStats,
        resumed_editions: tuple[str, ...] = (),
    ) -> "DegradedCoverage":
        return cls(
            total_editions=total_editions,
            harvested_editions=harvested_editions,
            losses=tuple(losses),
            fault_counts=dict(sorted(stats.faults.items())),
            service_calls=dict(sorted(stats.calls.items())),
            retries=stats.retries,
            exhausted=stats.exhausted,
            breaker_opens=stats.breaker_opens,
            virtual_time=stats.virtual_time,
            resumed_editions=resumed_editions,
        )

    # ------------------------------------------------------------ views

    @property
    def is_degraded(self) -> bool:
        return bool(self.losses or self.failed_nodes or self.skipped_nodes)

    @property
    def dropped_editions(self) -> tuple[str, ...]:
        """Editions lost entirely (exhausted retries / open breaker)."""
        return tuple(
            r.key for r in self.losses
            if r.stage == "harvest" and not r.reason.startswith("malformed")
        )

    @property
    def malformed_editions(self) -> tuple[str, ...]:
        """Editions harvested from corrupted pages (partial data)."""
        seen: dict[str, None] = {}
        for r in self.losses:
            if r.stage == "harvest" and r.reason.startswith("malformed"):
                seen.setdefault(r.key)
        return tuple(seen)

    @property
    def dropped_persons(self) -> tuple[str, ...]:
        """Names whose enrichment/inference lookups were lost (deduped)."""
        seen: dict[str, None] = {}
        for r in self.losses:
            if r.stage != "harvest":
                seen.setdefault(r.key)
        return tuple(seen)

    def per_stage(self) -> dict[str, int]:
        """Loss-record count per stage."""
        out: dict[str, int] = {}
        for r in self.losses:
            out[r.stage] = out.get(r.stage, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> str:
        """One-paragraph human summary for CLI / report output."""
        if (
            not self.is_degraded
            and not self.resumed_editions
            and not self.node_retries
        ):
            return "no degradation: every service call eventually succeeded"
        parts = [
            f"editions: {self.harvested_editions}/{self.total_editions} harvested",
        ]
        if self.failed_nodes:
            parts.append(
                f"{len(self.failed_nodes)} pipeline nodes failed "
                f"({', '.join(self.failed_nodes)})"
            )
        if self.skipped_nodes:
            parts.append(f"{len(self.skipped_nodes)} nodes skipped downstream")
        if self.node_retries:
            parts.append(f"{self.node_retries} node retries")
        dropped = self.dropped_editions
        if dropped:
            parts.append(f"dropped {len(dropped)} ({', '.join(dropped)})")
        malformed = self.malformed_editions
        if malformed:
            parts.append(f"{len(malformed)} malformed")
        persons = self.dropped_persons
        if persons:
            parts.append(f"{len(persons)} person lookups lost")
        if self.resumed_editions:
            parts.append(f"{len(self.resumed_editions)} resumed from checkpoint")
        parts.append(
            f"faults={sum(self.fault_counts.values())} retries={self.retries} "
            f"virtual_time={self.virtual_time:.2f}s"
        )
        return "; ".join(parts)
