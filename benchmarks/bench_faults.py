"""Benchmark FAULT: cost of the resilience layer.

Two questions: what does the fault plumbing cost when it injects
nothing (rate 0 vs the plain fast path), and what does a realistic
fault regime cost end-to-end (retries and losses are virtual-clock, so
any slowdown is real bookkeeping, not sleeping).
"""

import pytest

from repro.faults import FaultConfig
from repro.pipeline import run_pipeline
from repro.synth import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(seed=7, scale=1.0, include_timeline=False))


def test_pipeline_plain(benchmark, world):
    """Baseline: the fault-free fast path."""
    res = benchmark(run_pipeline, world=world)
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_pipeline_faults_rate_zero(benchmark, world):
    """Resilience plumbing live but inert — measures pure overhead."""
    res = benchmark(run_pipeline, world=world, faults=FaultConfig(rate=0.0))
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_pipeline_faults_rate_moderate(benchmark, world):
    """A realistic degraded regime: retries, breakers, losses."""
    res = benchmark(
        run_pipeline, world=world, faults=FaultConfig(rate=0.2, seed=5)
    )
    dc = res.degraded
    benchmark.extra_info["losses"] = len(dc.losses)
    benchmark.extra_info["retries"] = dc.retries
    benchmark.extra_info["virtual_time_s"] = round(dc.virtual_time, 2)
