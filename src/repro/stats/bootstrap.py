"""Bootstrap confidence intervals.

The paper reports point estimates; we add percentile-bootstrap CIs so the
reproduced tables can show uncertainty.  Resampling is vectorized: all
replicates are drawn as one (B, n) index matrix, and the statistic is
computed per row — for mean/proportion-like statistics this is a single
``take``+reduce, no Python-level loop per replicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapResult:
    estimate: float
    low: float
    high: float
    level: float
    replicates: int

    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    sample,
    statistic: Callable[[np.ndarray], float] | str = "mean",
    replicates: int = 2000,
    level: float = 0.95,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Percentile bootstrap CI for a statistic of a 1-D sample.

    Parameters
    ----------
    sample:
        Numeric observations (NaN dropped).
    statistic:
        'mean', 'median', 'proportion' (mean of a 0/1 array), or a
        callable mapping a (B, n) matrix of resamples to a length-B
        vector (vectorized) — callables receive the full matrix so they
        stay fast.
    replicates:
        Number of bootstrap resamples.
    level:
        Confidence level in (0, 1).
    rng:
        NumPy generator; required for reproducibility in library code
        (defaults to a fixed-seed generator).
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0,1), got {level}")
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    v = np.asarray(sample, dtype=np.float64)
    v = v[~np.isnan(v)]
    if v.size == 0:
        raise ValueError("bootstrap requires a nonempty sample")
    g = rng if rng is not None else np.random.default_rng(0)
    idx = g.integers(0, v.size, size=(replicates, v.size))
    boots = v[idx]  # (B, n)
    if statistic == "mean" or statistic == "proportion":
        stats = boots.mean(axis=1)
        est = float(v.mean())
    elif statistic == "median":
        stats = np.median(boots, axis=1)
        est = float(np.median(v))
    elif callable(statistic):
        stats = np.asarray(statistic(boots), dtype=np.float64)
        if stats.shape != (replicates,):
            raise ValueError(
                "callable statistic must map (B, n) resamples to length-B vector"
            )
        est = float(statistic(v[None, :])[0])
    else:
        raise ValueError(f"unknown statistic {statistic!r}")
    alpha = (1.0 - level) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapResult(est, float(low), float(high), level, replicates)
