"""Welch t-test vs the SciPy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as ss

from repro.stats import welch_ttest

RNG = np.random.default_rng(123)


class TestAgainstScipy:
    @pytest.mark.parametrize("n1,n2,mu2,sd2", [(10, 10, 0, 1), (40, 25, 0.5, 2), (100, 8, -1, 0.3)])
    def test_matches_scipy(self, n1, n2, mu2, sd2):
        a = RNG.normal(0, 1, n1)
        b = RNG.normal(mu2, sd2, n2)
        ours = welch_ttest(a, b)
        ref = ss.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(ref.statistic, rel=1e-10)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-8)

    def test_df_welch_satterthwaite(self):
        a = RNG.normal(0, 1, 30)
        b = RNG.normal(0, 3, 12)
        ours = welch_ttest(a, b)
        # df must be below n1+n2-2 and above min(n)-1
        assert min(len(a), len(b)) - 1 <= ours.df <= len(a) + len(b) - 2

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=3, max_size=40),
        st.lists(st.floats(-100, 100), min_size=3, max_size=40),
    )
    def test_property_matches_scipy(self, xs, ys):
        a, b = np.array(xs), np.array(ys)
        if np.var(a) == 0 and np.var(b) == 0:
            return
        ours = welch_ttest(a, b)
        ref = ss.ttest_ind(a, b, equal_var=False)
        if np.isnan(ref.statistic):
            assert np.isnan(ours.statistic)
        else:
            assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9, abs=1e-9)


class TestEdgeCases:
    def test_nan_dropped(self):
        a = [1.0, 2.0, np.nan, 3.0]
        b = [4.0, 5.0, 6.0]
        r = welch_ttest(a, b)
        assert r.n1 == 3 and r.n2 == 3

    def test_too_small_sample(self):
        r = welch_ttest([1.0], [1.0, 2.0])
        assert np.isnan(r.statistic)

    def test_zero_variance_both(self):
        r = welch_ttest([2.0, 2.0], [2.0, 2.0])
        assert np.isnan(r.statistic)

    def test_alternatives(self):
        a = RNG.normal(0, 1, 50)
        b = RNG.normal(1, 1, 50)
        less = welch_ttest(a, b, alternative="less")
        greater = welch_ttest(a, b, alternative="greater")
        two = welch_ttest(a, b)
        assert less.p_value < 0.05
        assert greater.p_value > 0.5
        assert two.p_value == pytest.approx(2 * less.p_value, rel=1e-9)

    def test_unknown_alternative(self):
        with pytest.raises(ValueError):
            welch_ttest([1, 2], [3, 4], alternative="both")

    def test_significance_helper(self):
        a = RNG.normal(0, 1, 200)
        b = RNG.normal(2, 1, 200)
        assert welch_ttest(a, b).significant()
