"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.viz import bar_chart, density_plot, format_records, format_table, histogram, line_plot
from repro.tabular import Table


class TestTablePrint:
    def test_aligned_columns(self):
        text = format_records(
            [{"a": 1, "b": "xy"}, {"a": 222, "b": None}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_empty(self):
        assert "(empty)" in format_records([], title="T")

    def test_format_table(self):
        t = Table({"x": [1.5, float("nan")]})
        text = format_table(t)
        assert "n/a" in text


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart({"a": 4.0, "b": 2.0}, width=8)
        lines = text.splitlines()
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 4

    def test_nan_values_zeroed(self):
        text = bar_chart({"a": float("nan"), "b": 1.0})
        assert "a" in text

    def test_empty(self):
        assert bar_chart({}) == "(no data)"


class TestHistogram:
    def test_counts_shown(self):
        text = histogram([1.0] * 10 + [5.0] * 3, bins=2)
        assert "10" in text and "3" in text

    def test_empty(self):
        assert histogram([]) == "(no data)"


class TestLinePlot:
    def test_legend_and_axes(self):
        x = np.linspace(0, 1, 50)
        text = line_plot({"s1": (x, x), "s2": (x, 1 - x)}, width=40, height=8)
        assert "1=s1" in text and "2=s2" in text
        assert "x: [" in text

    def test_empty(self):
        assert line_plot({}) == "(no data)"


class TestDensityPlot:
    def test_two_samples(self):
        rng = np.random.default_rng(0)
        text = density_plot(
            {"m": rng.normal(0, 1, 100), "f": rng.normal(2, 1, 80)}, width=40
        )
        assert "1=m" in text and "2=f" in text

    def test_log_scale(self):
        rng = np.random.default_rng(1)
        text = density_plot({"x": rng.lognormal(2, 1, 200)}, log_scale=True)
        assert "(no data)" not in text

    def test_degenerate_sample_skipped(self):
        assert density_plot({"x": [1.0]}) == "(no data)"
