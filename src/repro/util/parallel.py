"""Deterministic data-parallel map.

The harvesting stage of the pipeline processes one conference per task and
the bootstrap machinery processes one resample batch per task.  Both are
embarrassingly parallel, so we provide a single primitive: a chunked
process-pool map whose result is *bit-identical* regardless of the number
of workers.

Determinism comes from two rules (the classic MPI-style decomposition
discipline):

1. Any randomness a task needs must derive from ``(root_seed, item_key)``
   (see :mod:`repro.util.rng`), never from a shared generator, so results
   do not depend on scheduling.
2. Results are returned in input order, never completion order.

``parallel_map`` falls back to a serial loop when ``workers <= 1`` or when
the input is small, since process startup dominates for the problem sizes
in this reproduction.  The serial and parallel paths are exercised against
each other in the test suite.
"""

from __future__ import annotations

import os
import traceback as _tb
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs.context import ObsEnvelope, capture
from repro.obs.context import current as _obs_current

__all__ = ["ParallelConfig", "TaskError", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class TaskError:
    """A captured per-task failure.

    Equality considers only the exception's class name and message —
    both identical whether the task ran in-process or in a worker — so
    the serial and parallel paths produce *equal* result lists for the
    same poisoned input, and the error occupies the failed item's slot
    without disturbing the ordering of surviving results.

    ``traceback`` carries the original formatted traceback
    (``traceback.format_exc()`` at the raise site) for debugging; it is
    excluded from comparison and repr so determinism checks stay
    line-number-agnostic.
    """

    kind: str
    message: str
    traceback: str = field(default="", compare=False, repr=False)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}: {self.message}"


class _CaptureErrors:
    """Picklable wrapper turning task exceptions into :class:`TaskError`."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable) -> None:
        self._fn = fn

    def __call__(self, item):
        try:
            return self._fn(item)
        except Exception as exc:
            return TaskError(
                kind=type(exc).__name__,
                message=str(exc),
                traceback=_tb.format_exc(),
            )


class _ObsTask:
    """Picklable wrapper running one ``(index, item)`` under obs capture.

    Each item gets a fresh child tracer/metrics registry seeded from the
    item's *position* (never the worker), so captured spans and counters
    are identical across worker counts.  The envelope rides back with
    the result and is merged in input order by :func:`parallel_map`.
    """

    __slots__ = ("_fn", "_seed", "_path")

    def __init__(self, fn: Callable, seed: int, path: tuple[str, ...]) -> None:
        self._fn = fn
        self._seed = seed
        self._path = path

    def __call__(self, pair) -> ObsEnvelope:
        index, item = pair
        with capture(self._seed, self._path, index) as cap:
            result = self._fn(item)
        return ObsEnvelope(
            result, cap.tracer.finished, cap.metrics, cap.events.events
        )


@dataclass(frozen=True)
class ParallelConfig:
    """Execution policy for :func:`parallel_map`.

    Attributes
    ----------
    workers:
        Number of worker processes; ``0`` or ``1`` means serial. ``None``
        selects ``os.cpu_count()``.
    min_items_per_worker:
        If the input has fewer than ``workers * min_items_per_worker``
        items, run serially — spawning processes would cost more than it
        saves.
    chunksize:
        Items submitted to a worker per IPC round-trip.
    """

    workers: int | None = 0
    min_items_per_worker: int = 2
    chunksize: int = 1

    def resolved_workers(self, n_items: int) -> int:
        w = os.cpu_count() or 1 if self.workers is None else self.workers
        if w <= 1:
            return 1
        if n_items < w * self.min_items_per_worker:
            return 1
        return min(w, n_items)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig | None = None,
    capture_errors: bool = False,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order.

    ``fn`` must be picklable (module-level) when running with more than
    one worker.  The output is identical to ``[fn(x) for x in items]`` by
    construction.

    With ``capture_errors=True`` a raising task yields a
    :class:`TaskError` in its slot instead of poisoning the whole map:
    one bad item no longer kills the ``ProcessPoolExecutor`` (or the
    serial loop), and both paths return the same captured error.

    When an observability context is active (:func:`repro.obs.current`),
    every task runs under a per-item capture context — in the serial
    path too, so span IDs and metrics cannot depend on worker count —
    and the captured spans/counters are grafted back in input order.
    """
    seq: Sequence[T] = list(items)
    cfg = config or ParallelConfig()
    if capture_errors:
        fn = _CaptureErrors(fn)
    ctx = _obs_current()
    observed = ctx.enabled
    if observed:
        path = ctx.tracer.current_path() + ("parallel_map",)
        mapped: Callable = _ObsTask(fn, ctx.tracer.seed, path)
        work: Sequence = list(enumerate(seq))
    else:
        mapped = fn
        work = seq
    workers = cfg.resolved_workers(len(seq))
    if workers <= 1 or not seq:
        raw = [mapped(x) for x in work]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            raw = list(pool.map(mapped, work, chunksize=max(1, cfg.chunksize)))
    if not observed:
        return raw
    results: list[R] = []
    for i, env in enumerate(raw):
        ctx.tracer.adopt(env.spans, tid=i + 1)
        ctx.metrics.merge(env.metrics)
        ctx.events.adopt(env.events)
        results.append(env.result)
    return results
