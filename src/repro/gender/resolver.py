"""The gender-assignment cascade.

Order and thresholds follow §2 exactly:

1. manual web evidence (pronoun preferred, photo fallback);
2. genderize, accepted only when the reported probability is ≥ 0.70;
3. otherwise unassigned.

The resolver records the method on every assignment so downstream
reporting can reproduce the paper's coverage split
(95.18% / 1.79% / 3.03%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gender.genderize import GenderizeClient
from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.gender.webevidence import EvidenceKind, WebEvidenceSource

__all__ = ["ResolverPolicy", "GenderResolver"]


@dataclass(frozen=True)
class ResolverPolicy:
    """Tunable cascade policy (paper defaults)."""

    genderize_threshold: float = 0.70
    use_manual: bool = True
    use_genderize: bool = True

    def __post_init__(self) -> None:
        if not 0.5 <= self.genderize_threshold <= 1.0:
            raise ValueError("genderize_threshold must be in [0.5, 1]")


class GenderResolver:
    """Runs the cascade for a set of researchers."""

    def __init__(
        self,
        web: WebEvidenceSource | None,
        genderize: GenderizeClient | None,
        policy: ResolverPolicy | None = None,
    ) -> None:
        self._web = web
        self._genderize = genderize
        self.policy = policy or ResolverPolicy()
        if self.policy.use_manual and web is None:
            raise ValueError("policy enables manual evidence but no source given")
        if self.policy.use_genderize and genderize is None:
            raise ValueError("policy enables genderize but no client given")

    def resolve(self, person_id: str, full_name: str) -> GenderAssignment:
        """Assign one researcher."""
        if self.policy.use_manual and self._web is not None:
            ev = self._web.lookup(person_id)
            if ev.kind is EvidenceKind.PRONOUN:
                return GenderAssignment(ev.observed_gender, InferenceMethod.MANUAL, 1.0)
            if ev.kind is EvidenceKind.PHOTO:
                return GenderAssignment(ev.observed_gender, InferenceMethod.MANUAL, 0.98)
        if self.policy.use_genderize and self._genderize is not None:
            resp = self._genderize.query(full_name)
            if (
                resp.gender is not None
                and resp.probability >= self.policy.genderize_threshold
                and resp.count > 0
            ):
                return GenderAssignment(
                    resp.gender, InferenceMethod.GENDERIZE, resp.probability
                )
        return GenderAssignment.unassigned()

    def resolve_all(
        self, people: list[tuple[str, str]]
    ) -> dict[str, GenderAssignment]:
        """Assign a batch of ``(person_id, full_name)`` researchers."""
        return {pid: self.resolve(pid, name) for pid, name in people}

    @staticmethod
    def coverage(assignments: dict[str, GenderAssignment]) -> dict[str, float]:
        """Fraction of researchers per inference method.

        Keys: 'manual', 'genderize', 'none'.  This is the statistic the
        paper reports as 95.18% / 1.79% / 3.03%.
        """
        n = len(assignments)
        if n == 0:
            return {"manual": float("nan"), "genderize": float("nan"), "none": float("nan")}
        counts = {"manual": 0, "genderize": 0, "none": 0}
        for a in assignments.values():
            if a.method is InferenceMethod.MANUAL:
                counts["manual"] += 1
            elif a.method is InferenceMethod.GENDERIZE:
                counts["genderize"] += 1
            else:
                counts["none"] += 1
        return {k: v / n for k, v in counts.items()}
