"""Proportion containers used by every representation metric.

Everything in the paper ultimately reduces to "k women out of n known",
so we give that pair a first-class type with safe division, Wilson
intervals, and the χ² contrast the paper reports between two groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.chisquare import Chi2Result, chi2_two_proportions

__all__ = ["Proportion", "proportion", "proportion_diff"]


@dataclass(frozen=True)
class Proportion:
    """``hits`` successes out of ``n`` trials.

    ``value`` is NaN when ``n == 0`` — mirroring the paper's practice of
    excluding unknown-gender researchers from denominators.
    """

    hits: int
    n: int

    def __post_init__(self) -> None:
        if not 0 <= self.hits <= self.n:
            raise ValueError(f"hits {self.hits} outside [0, {self.n}]")

    @property
    def value(self) -> float:
        return self.hits / self.n if self.n else float("nan")

    @property
    def pct(self) -> float:
        """The percentage (0–100), NaN for empty denominators."""
        return 100.0 * self.value if self.n else float("nan")

    def wilson_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Wilson score interval for the underlying probability."""
        if self.n == 0:
            return (float("nan"), float("nan"))
        from scipy import special

        # z for the two-sided level via inverse error function
        z = float(np.sqrt(2.0) * special.erfinv(level))
        p = self.value
        n = self.n
        denom = 1.0 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = z * np.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
        lo = max(0.0, min(float(center - half), p))  # fp-safe: always covers p̂
        hi = min(1.0, max(float(center + half), p))
        return (lo, hi)

    def combine(self, other: "Proportion") -> "Proportion":
        """Pooled proportion of two disjoint groups."""
        return Proportion(self.hits + other.hits, self.n + other.n)

    def __str__(self) -> str:
        return f"{self.hits}/{self.n} ({self.pct:.2f}%)" if self.n else f"0/0 (n/a)"


def proportion(flags) -> Proportion:
    """Build a Proportion from a boolean array (NaN-free)."""
    f = np.asarray(flags, dtype=bool)
    return Proportion(int(f.sum()), int(f.size))


def proportion_diff(a: Proportion, b: Proportion, correction: bool = True) -> Chi2Result:
    """χ² contrast of two proportions (the paper's standard comparison)."""
    return chi2_two_proportions(a.hits, a.n, b.hits, b.n, correction=correction)
