"""Quota allocation: fractional targets → exact integer counts."""

from __future__ import annotations

import numpy as np

from repro.util.rounding import largest_remainder

__all__ = ["split_women", "allocate_counts", "allocate_two_way"]


def split_women(total: int, far: float) -> tuple[int, int]:
    """Split ``total`` known-gender slots into (women, men) at rate ``far``.

    Rounds to the nearest integer; guarantees both parts are nonnegative
    and sum to ``total``.
    """
    if total < 0:
        raise ValueError("total must be nonnegative")
    if not 0.0 <= far <= 1.0:
        raise ValueError(f"far must be in [0,1], got {far}")
    women = int(round(total * far))
    women = min(max(women, 0), total)
    return women, total - women


def allocate_counts(weights, total: int) -> np.ndarray:
    """Integer allocation of ``total`` over categories by weight."""
    return largest_remainder(np.asarray(weights, dtype=float), total)


def allocate_two_way(
    row_targets: np.ndarray, col_targets: np.ndarray, seed: np.ndarray | None = None
) -> np.ndarray:
    """Integer R×C table with exact row sums and near-exact column sums.

    Fits the fractional table by IPF (independence seed unless given),
    then integerizes row by row with largest remainder, so every row sum
    is exact; column sums can be off by rounding (reported by tests).
    Used to cross nationality with gender inside a conference.
    """
    from repro.calibration.ipf import ipf_fit

    rows = np.asarray(row_targets, dtype=float)
    cols = np.asarray(col_targets, dtype=float)
    if rows.sum() <= 0 or cols.sum() <= 0:
        raise ValueError("targets must have positive totals")
    if abs(rows.sum() - cols.sum()) > 1e-6 * max(rows.sum(), 1.0):
        raise ValueError("row and column totals must agree")
    if seed is None:
        seed = np.outer(rows, cols) / rows.sum()
    fit = ipf_fit(seed, [((0,), rows), ((1,), cols)])
    frac = fit.table
    out = np.zeros(frac.shape, dtype=np.int64)
    for i in range(frac.shape[0]):
        r = int(round(rows[i]))
        if r > 0:
            if frac[i].sum() <= 0:
                # structurally empty row with a positive target: spread evenly
                out[i] = largest_remainder(np.ones_like(frac[i]), r)
            else:
                out[i] = largest_remainder(frac[i], r)
    return out
