"""Tests for the career model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scholar import h_index
from repro.synth.careers import (
    BAND_SHARES,
    CareerModel,
    gs_reported_publications,
    s2_reported_publications,
)


@pytest.fixture
def model():
    return CareerModel(np.random.default_rng(0))


class TestBands:
    def test_shares_sum_to_one(self):
        for shares in BAND_SHARES.values():
            assert sum(shares) == pytest.approx(1.0)

    def test_women_authors_more_novice(self):
        f = BAND_SHARES[("author", "F")]
        m = BAND_SHARES[("author", "M")]
        assert f[0] > m[0]       # more novices
        assert f[2] < m[2]       # fewer experienced

    def test_pc_more_experienced_than_authors(self):
        for g in ("F", "M"):
            assert BAND_SHARES[("pc", g)][2] > BAND_SHARES[("author", g)][2]

    def test_draw_band_distribution(self, model):
        draws = [model.draw_band("author", "F") for _ in range(3000)]
        novice_share = draws.count("novice") / len(draws)
        assert abs(novice_share - BAND_SHARES[("author", "F")][0]) < 0.04

    def test_unknown_key(self, model):
        with pytest.raises(KeyError):
            model.draw_band("editor", "F")


class TestH:
    def test_band_ranges(self, model):
        for _ in range(300):
            assert 0 <= model.draw_h("novice") < 13
            assert 13 <= model.draw_h("mid-career") <= 18
            assert model.draw_h("experienced") >= 19

    def test_unknown_band(self, model):
        with pytest.raises(ValueError):
            model.draw_h("emeritus")


class TestCareerConstruction:
    def test_h_index_exact(self, model):
        """The headline invariant: generated vectors realize the target h."""
        for _ in range(200):
            career = model.draw_career("author", "M")
            assert h_index(np.array(career.citation_vector)) == career.h_index

    def test_pubs_at_least_h(self, model):
        for _ in range(100):
            c = model.draw_career("pc", "F")
            assert c.past_publications >= c.h_index
            assert len(c.citation_vector) == c.past_publications

    def test_zero_h_all_zero_citations(self):
        m = CareerModel(np.random.default_rng(1))
        zeros = [c for c in (m.draw_career("author", "F") for _ in range(300)) if c.h_index == 0]
        assert zeros, "novice draws should include h=0 researchers"
        for c in zeros:
            assert all(v == 0 for v in c.citation_vector)

    def test_right_skewed_distribution(self, model):
        pubs = [model.draw_career("pc", "M").past_publications for _ in range(500)]
        assert np.mean(pubs) > np.median(pubs)  # right skew


class TestReportedCounts:
    def test_gs_mild_noise(self):
        rng = np.random.default_rng(2)
        vals = [gs_reported_publications(100, rng) for _ in range(300)]
        assert 0.8 < np.mean(vals) / 100 < 1.4
        assert gs_reported_publications(0, rng) == 0

    def test_s2_heavy_noise(self):
        rng = np.random.default_rng(3)
        true = np.array([int(x) for x in rng.lognormal(3, 1, 400)]) + 1
        s2 = np.array([s2_reported_publications(int(t), rng) for t in true])
        r = np.corrcoef(true, s2)[0, 1]
        assert r < 0.75  # heavily decorrelated (paper's r = 0.334)
        assert (s2 >= 0).all()
