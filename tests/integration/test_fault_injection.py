"""Fault injection: the pipeline must degrade gracefully, not crash.

Real scrapes hit broken pages; the paper's methodology treats
unresolvable records as unknown and excludes them from denominators.
These tests corrupt harvested artifacts in targeted ways and assert the
pipeline (a) completes, (b) loses only the corrupted records, and
(c) keeps its statistics denominators consistent.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import far_report
from repro.harvest.webindex import build_name_keyed_evidence
from repro.pipeline import (
    AnalysisDataset,
    enrich_researchers,
    infer_genders,
    ingest_world,
    link_identities,
)


@pytest.fixture(scope="module")
def harvested(small_world):
    return ingest_world(small_world)


def run_rest_of_pipeline(world, harvested):
    linked = link_identities(harvested)
    enrichment = enrich_researchers(linked, world.gs_store, world.s2_store)
    avail, truth = build_name_keyed_evidence(
        world.registry, world.evidence_availability, world.true_genders
    )
    inference = infer_genders(linked, avail, truth, seed=world.seed)
    return AnalysisDataset.build(linked, enrichment, inference.assignments)


class TestFaultInjection:
    def test_dropped_conference(self, small_world, harvested):
        ds = run_rest_of_pipeline(small_world, harvested[1:])
        far = far_report(ds)
        assert len(far.by_conference) == 8
        assert 0.05 < far.overall.value < 0.15

    def test_missing_citations(self, small_world, harvested):
        mangled = []
        for conf in harvested:
            papers = [
                dataclasses.replace(p, citations_36mo=None) for p in conf.papers
            ]
            c = dataclasses.replace(conf)
            c.papers = papers
            mangled.append(c)
        ds = run_rest_of_pipeline(small_world, mangled)
        from repro.analysis import reception_report

        rep = reception_report(ds)
        assert rep.n_female_lead == 0 and rep.n_male_lead == 0
        assert np.isnan(rep.mean_male)

    def test_garbled_author_names(self, small_world, harvested):
        """Names replaced by initials lose gender but keep structure."""
        mangled = []
        for conf in harvested:
            papers = []
            for p in conf.papers:
                names = tuple(
                    f"{n[0]}. {n.split()[-1]}" if i == 0 else n
                    for i, n in enumerate(p.author_names)
                )
                papers.append(dataclasses.replace(p, author_names=names))
            c = dataclasses.replace(conf)
            c.papers = papers
            mangled.append(c)
        ds = run_rest_of_pipeline(small_world, mangled)
        # first authors are now mostly unknown-gender (initials resolve
        # neither manually nor via genderize)
        known_firsts = sum(1 for g in ds.papers["first_gender"] if g is not None)
        assert known_firsts < 0.6 * ds.papers.num_rows
        # but the rest of the statistics still compute
        far = far_report(ds)
        assert far.overall.n > 0

    def test_empty_roles_section(self, small_world, harvested):
        mangled = []
        for conf in harvested:
            c = dataclasses.replace(conf)
            c.roles = []
            c.papers = conf.papers
            mangled.append(c)
        ds = run_rest_of_pipeline(small_world, mangled)
        assert ds.role_slots.num_rows == 0
        from repro.analysis import pc_report

        pc = pc_report(ds)
        assert pc.memberships.n == 0  # empty, but no crash

    def test_duplicate_paper_entries(self, small_world, harvested):
        mangled = []
        for conf in harvested:
            c = dataclasses.replace(conf)
            c.papers = list(conf.papers) + [conf.papers[0]]
            c.roles = conf.roles
            mangled.append(c)
        ds = run_rest_of_pipeline(small_world, mangled)
        expected = sum(len(h.papers) for h in harvested) + len(harvested)
        assert ds.papers.num_rows == expected  # duplicates kept, visible
