"""Tests for the AnalysisDataset tables."""

import numpy as np
import pytest

from repro.gender.model import Gender
from repro.gender.sensitivity import reassign_unknowns


class TestTables:
    def test_tables_present(self, small_result):
        ds = small_result.dataset
        for name in (
            "researchers", "author_positions", "conf_authors", "papers",
            "conferences", "role_slots",
        ):
            assert getattr(ds, name).num_rows > 0

    def test_researchers_unique(self, small_result):
        ids = small_result.dataset.researchers["researcher_id"]
        assert len(ids) == len(set(ids))

    def test_positions_reference_researchers(self, small_result):
        ds = small_result.dataset
        known = set(ds.researchers["researcher_id"])
        assert set(ds.author_positions["researcher_id"]) <= known

    def test_first_last_flags(self, small_result):
        ds = small_result.dataset
        pos = ds.author_positions
        firsts = np.array([bool(x) for x in pos["is_first"]])
        # exactly one first author per paper
        papers = {}
        for pid, isf in zip(pos["paper_id"], firsts):
            papers.setdefault(pid, 0)
            papers[pid] += int(isf)
        assert all(v == 1 for v in papers.values())

    def test_single_author_paper_has_no_last(self, small_result):
        ds = small_result.dataset
        for rec in ds.papers.to_records():
            if rec["num_authors"] == 1:
                assert rec["last_author"] is None

    def test_conference_metadata(self, small_result):
        ds = small_result.dataset
        confs = {r["conference"]: r for r in ds.conferences.to_records()}
        assert confs["SC"]["double_blind"] is True
        assert confs["SC"]["diversity_chair"] is True
        assert confs["IPDPS"]["double_blind"] is False
        assert confs["HPCC"]["code_of_conduct"] is False

    def test_gender_values(self, small_result):
        g = small_result.dataset.researchers.col("gender")
        vals = {v for v in g.values if v is not None}
        assert vals <= {"F", "M"}

    def test_unknown_count_matches_missing(self, small_result):
        ds = small_result.dataset
        assert ds.unknown_count() == int(ds.researchers.col("gender").is_missing().sum())

    def test_known_gender_view(self, small_result):
        ds = small_result.dataset
        known = ds.known_gender_researchers()
        assert known.num_rows == ds.researchers.num_rows - ds.unknown_count()


class TestWithAssignments:
    def test_sensitivity_rebuild(self, small_result):
        ds = small_result.dataset
        forced = ds.with_assignments(reassign_unknowns(ds.assignments, Gender.F))
        assert forced.unknown_count() == 0
        # non-gender columns untouched
        assert forced.papers["paper_id"].tolist() == ds.papers["paper_id"].tolist()
        assert forced.researchers.num_rows == ds.researchers.num_rows

    def test_first_gender_updated(self, small_result):
        ds = small_result.dataset
        forced = ds.with_assignments(reassign_unknowns(ds.assignments, Gender.F))
        before = sum(1 for g in ds.papers["first_gender"] if g == "F")
        after = sum(1 for g in forced.papers["first_gender"] if g == "F")
        assert after >= before

    def test_original_unchanged(self, small_result):
        ds = small_result.dataset
        n_unknown = ds.unknown_count()
        ds.with_assignments(reassign_unknowns(ds.assignments, Gender.M))
        assert ds.unknown_count() == n_unknown


class TestRunner:
    def test_timer_stages(self, small_result):
        stages = set(small_result.timer.durations)
        assert {"ingest", "link", "enrich", "infer", "dataset"} <= stages

    def test_coverage_property(self, small_result):
        cov = small_result.coverage
        assert set(cov) == {"manual", "genderize", "none"}
        assert sum(cov.values()) == pytest.approx(1.0)
