"""Benchmark ENG: stage-DAG engine, cold vs warm artifact cache.

The headline claim of the engine redesign: a warm run — every node's
content-addressed fingerprint hits the cache — re-executes zero stage
bodies and pays only deserialization, at least 5x faster than a cold
run at full scale.  ``test_engine_warm`` measures and asserts the
ratio; the cold/warm benchmarks report the absolute numbers.
"""

import time

import pytest

from repro.pipeline import EngineConfig, RunConfig, run_pipeline
from repro.synth import WorldConfig

FULL = WorldConfig(seed=7, scale=1.0)


def _cfg(cache_dir, refresh: bool = False, workers: int | None = None) -> RunConfig:
    return RunConfig(
        world=FULL,
        engine=EngineConfig(
            cache_dir=str(cache_dir), workers=workers, refresh=refresh
        ),
    )


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A cache directory populated by one full cold run."""
    cache = tmp_path_factory.mktemp("engine-cache")
    run_pipeline(_cfg(cache))
    return cache


def test_engine_cold(benchmark, tmp_path_factory):
    """Full pipeline on the engine, recomputing every node each round."""
    cache = tmp_path_factory.mktemp("cold-cache")
    res = benchmark(run_pipeline, _cfg(cache, refresh=True))
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_engine_warm(benchmark, warm_cache):
    """Fully cached run: zero stage bodies, only artifact loads."""
    res = benchmark(run_pipeline, _cfg(warm_cache))
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows

    # one timed cold + one timed warm round for the acceptance ratio
    t0 = time.perf_counter()
    run_pipeline(_cfg(warm_cache, refresh=True))
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_pipeline(_cfg(warm_cache))
    warm = time.perf_counter() - t0
    benchmark.extra_info["cold_seconds"] = round(cold, 3)
    benchmark.extra_info["warm_seconds"] = round(warm, 3)
    benchmark.extra_info["speedup"] = round(cold / warm, 1)
    assert cold / warm >= 5, f"warm speedup only {cold / warm:.1f}x"


def test_engine_warm_parallel(benchmark, warm_cache):
    """Warm run with generation-level workers: all hits, same payload."""
    res = benchmark(run_pipeline, _cfg(warm_cache, workers=2))
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows
