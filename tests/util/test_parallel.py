"""Tests for the deterministic parallel map."""

import os

import pytest

from repro.util.parallel import ParallelConfig, parallel_map


def _square(x: int) -> int:
    return x * x


def _seeded_draw(item):
    """A worker whose randomness derives from its item key."""
    from repro.util.rng import spawn_rng

    key, root = item
    return float(spawn_rng(root, "draw", key).random())


class TestSerial:
    def test_matches_list_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_order_preserved(self):
        out = parallel_map(_square, [3, 1, 2])
        assert out == [9, 1, 4]


class TestParallel:
    def test_parallel_equals_serial(self):
        items = list(range(32))
        serial = parallel_map(_square, items, ParallelConfig(workers=1))
        par = parallel_map(_square, items, ParallelConfig(workers=4, min_items_per_worker=1))
        assert serial == par

    def test_seeded_randomness_independent_of_workers(self):
        items = [(f"item{i}", 99) for i in range(16)]
        one = parallel_map(_seeded_draw, items, ParallelConfig(workers=1))
        four = parallel_map(
            _seeded_draw, items, ParallelConfig(workers=4, min_items_per_worker=1)
        )
        assert one == four

    def test_small_inputs_stay_serial(self):
        cfg = ParallelConfig(workers=8, min_items_per_worker=4)
        assert cfg.resolved_workers(8) == 1  # 8 < 8*4
        assert cfg.resolved_workers(64) == 8

    def test_workers_none_uses_cpu_count(self):
        cfg = ParallelConfig(workers=None, min_items_per_worker=1)
        assert cfg.resolved_workers(10_000) == min(os.cpu_count() or 1, 10_000)

    def test_workers_capped_by_items(self):
        cfg = ParallelConfig(workers=64, min_items_per_worker=1)
        # 3 items < 64 workers * 1 item each -> serial is cheaper
        assert cfg.resolved_workers(3) == 1
        # with enough items, the cap is the item count vs worker count
        assert cfg.resolved_workers(64) == 64
        assert cfg.resolved_workers(100) == 64
