#!/usr/bin/env python3
"""How much review bias could hide in the paper's data? (§2 / §3.1)

Usage::

    python examples/review_bias_bounds.py

The paper observes accepted papers only, so gender bias in reviewing
could make FAR undercount women — and §3.1's double- vs single-blind
contrast is its only (nonsignificant) probe.  This example simulates the
review process at the paper's scale and answers three questions:

1. how strongly does visible-identity bias suppress accepted FAR?
2. what bias magnitude would explain the entire double/single-blind
   lead-author difference the paper saw (6.2% vs 11.8%)?
3. what is the smallest bias the paper's sample sizes could have
   detected at α = 0.05 — i.e. how much room its "cannot completely
   rule out review bias" caveat really leaves?
"""

from __future__ import annotations

from repro.review import ReviewConfig, bias_sweep, detectable_bias
from repro.stats import minimum_detectable_diff
from repro.viz import format_records


def main() -> None:
    # a typical single-blind conference from the paper's set
    base = ReviewConfig(
        submissions=400,
        acceptance_rate=0.22,
        submission_far=0.118,       # single-blind lead FAR observed
        reviews_per_paper=3,
    )
    sweep = bias_sweep(base, biases=(0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0), cycles=150)

    rows = [
        {
            "bias (score sd units)": b,
            "accepted FAR": f"{100*f:.2f}%",
            "suppression": f"{100*s:.2f}pp",
        }
        for b, f, s in zip(sweep.biases, sweep.accepted_far, sweep.suppression())
    ]
    print(format_records(rows, title="Visible-identity bias vs accepted FAR"))
    print()

    observed_gap = 0.1179 - 0.0617  # single- minus double-blind lead FAR
    implied = sweep.bias_for_gap(observed_gap)
    print(f"observed single-vs-double-blind lead gap: {100*observed_gap:.1f}pp")
    print(f"bias that would fully explain it:         {implied:.2f} score-sd "
          "(a large, Tomkins-scale penalty)")

    min_bias = detectable_bias(sweep, n_single=417, n_double=83)
    print(f"smallest bias detectable at the paper's n: "
          f"{'none in sweep' if min_bias == float('inf') else f'{min_bias:.2f} score-sd'}")
    mdd = minimum_detectable_diff(0.0617, 83, 417)
    print(f"minimum detectable FAR difference (80% power): {100*mdd:.1f}pp "
          f"(the observed gap was {100*observed_gap:.1f}pp) — underpowered, "
          "as the paper cautions")


if __name__ == "__main__":
    main()
