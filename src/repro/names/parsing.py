"""Name string manipulation: forename extraction and normalization.

The pipeline links records from different sources (proceedings, committee
pages, scholar profiles) by name; these helpers define the canonical key.
"""

from __future__ import annotations

import functools
import re
import unicodedata

__all__ = ["clean_person_name", "forename_of", "normalize_name", "name_key", "cached_name_key"]

_WS = re.compile(r"\s+")
_INITIAL = re.compile(r"^[A-Za-z]\.?$")

# Invisible/format characters that survive ``\s`` collapsing: zero-width
# space/joiners, the BOM, and soft hyphens.  Scraped pages carry these
# routinely, and a single one splits an author into two researchers.
_ZERO_WIDTH = re.compile("[\u200b\u200c\u200d\u2060\ufeff\u00ad]")


def normalize_name(name: str) -> str:
    """Collapse whitespace and strip; preserves case and diacritics."""
    return _WS.sub(" ", name).strip()


def clean_person_name(name: str) -> str:
    """Scrub a scraped person name for record-keeping and keying.

    Removes zero-width/format characters, maps every Unicode whitespace
    (NBSP, thin/ideographic spaces, ...) to a plain space, and collapses
    internal runs — so "Ada  Lovelace" and "Ada Lovelace" key to
    the same researcher instead of splitting into two.
    """
    return normalize_name(_ZERO_WIDTH.sub("", name))


def forename_of(full_name: str) -> str | None:
    """First non-initial token of a full name, or None.

    "R. Smith" has no usable forename (an initial cannot be gender-
    inferred); "Rhody D. Kaner" yields "Rhody".
    """
    tokens = normalize_name(full_name).split(" ")
    for tok in tokens[:-1] or tokens:
        if not _INITIAL.match(tok):
            return tok
    return None


def _strip_accents(text: str) -> str:
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def name_key(full_name: str) -> str:
    """Canonical matching key: accent-folded, lowercase, single spaces.

    Used for identity resolution across harvested sources.  Two people
    with the same key are treated as the same researcher — the same
    (documented) failure mode real bibliometric pipelines have.
    """
    return _strip_accents(normalize_name(full_name)).lower()


@functools.lru_cache(maxsize=65536)
def cached_name_key(full_name: str) -> str:
    """Memoized :func:`name_key` for the lookup-loop hot paths.

    Identity resolution and the scholar stores key every observation by
    name; the same spelling recurs once per role/paper observation, so
    the normalization (NFKD decompose + filter) is worth caching.  The
    function is pure; the bound keeps a 10⁷-researcher universe from
    pinning every spelling in memory.
    """
    return name_key(full_name)
