"""Iterative proportional fitting (raking).

The paper publishes *marginals* of the researcher population — country
totals (Table 2), region × role × gender rates (Table 3), sector shares
(§5.3), per-conference gender rates (§3) — but never the joint
distribution.  To synthesize researchers whose cross-tabulations all
match, we fit a joint table by IPF: start from a seed table (independence
or a prior) and repeatedly rescale along each constrained margin until
every margin matches.  IPF converges to the maximum-entropy table
consistent with the targets whenever they are mutually consistent, which
is exactly the "least additional assumptions" reconstruction we want.

The implementation is dimension-generic and fully vectorized: each
adjustment is one reduce + one broadcast multiply over the N-D array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["IPFResult", "ipf_fit"]


@dataclass(frozen=True)
class IPFResult:
    """Outcome of an IPF run.

    Attributes
    ----------
    table:
        The fitted joint table (fractional cell counts).
    iterations:
        Sweeps performed (one sweep adjusts every margin once).
    max_error:
        Largest absolute relative deviation of a fitted margin from its
        target at termination.
    converged:
        Whether ``max_error <= tol`` within the iteration budget.
    """

    table: np.ndarray
    iterations: int
    max_error: float
    converged: bool


def _margin(table: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    """Sum ``table`` over every axis not in ``dims`` (dims keep order)."""
    other = tuple(ax for ax in range(table.ndim) if ax not in dims)
    m = table.sum(axis=other)
    # table.sum drops axes; reorder to match dims order if permuted
    order = np.argsort(np.argsort(dims))
    return np.transpose(m, axes=order) if m.ndim > 1 else m


def ipf_fit(
    seed: np.ndarray,
    margins: Sequence[tuple[tuple[int, ...], np.ndarray]],
    tol: float = 1e-8,
    max_iter: int = 500,
) -> IPFResult:
    """Fit a joint table to the given margins by raking.

    Parameters
    ----------
    seed:
        Nonnegative N-D start table.  Zero cells stay zero (structural
        zeros), which is how impossible combinations are expressed.
    margins:
        Sequence of ``(dims, target)`` pairs: ``dims`` are the axes the
        margin lives on (in target's axis order) and ``target`` the
        desired sums.  All targets must share the same grand total
        (checked to 1e-6 relative).
    tol:
        Convergence threshold on the max relative margin error.
    max_iter:
        Maximum sweeps.

    Returns
    -------
    IPFResult
    """
    table = np.array(seed, dtype=np.float64)
    if np.any(table < 0):
        raise ValueError("seed table must be nonnegative")
    if not margins:
        raise ValueError("at least one margin is required")
    totals = []
    specs: list[tuple[tuple[int, ...], np.ndarray]] = []
    for dims, target in margins:
        dims = tuple(int(d) for d in dims)
        t = np.asarray(target, dtype=np.float64)
        if np.any(t < 0):
            raise ValueError("margin targets must be nonnegative")
        expected_shape = tuple(table.shape[d] for d in dims)
        if t.shape != expected_shape:
            raise ValueError(
                f"margin on dims {dims} has shape {t.shape}, expected {expected_shape}"
            )
        totals.append(t.sum())
        specs.append((dims, t))
    grand = totals[0]
    for t in totals[1:]:
        if grand > 0 and abs(t - grand) > 1e-6 * max(grand, 1.0):
            raise ValueError(
                f"margins disagree on grand total: {grand} vs {t} "
                "(rescale targets before fitting)"
            )
    if table.sum() == 0:
        raise ValueError("seed table sums to zero")

    def max_rel_error() -> float:
        err = 0.0
        for dims, target in specs:
            cur = _margin(table, dims)
            denom = np.maximum(target, 1e-12)
            err = max(err, float(np.max(np.abs(cur - target) / denom)))
        return err

    it = 0
    err = max_rel_error()
    while err > tol and it < max_iter:
        for dims, target in specs:
            cur = _margin(table, dims)
            with np.errstate(divide="ignore", invalid="ignore"):
                factor = np.where(cur > 0, target / np.maximum(cur, 1e-300), 0.0)
            # broadcast factor back over the full table
            shape = [1] * table.ndim
            for ax_pos, ax in enumerate(dims):
                shape[ax] = table.shape[ax]
            # factor axes are in dims order; move them into position
            f = factor
            # build an indexable broadcast array
            expand = f.reshape(
                [table.shape[ax] if ax in dims else 1 for ax in range(table.ndim)]
            ) if list(dims) == sorted(dims) else None
            if expand is None:
                # permute factor so its axes are ascending before reshape
                perm = np.argsort(dims)
                f = np.transpose(f, axes=perm)
                expand = f.reshape(
                    [table.shape[ax] if ax in dims else 1 for ax in range(table.ndim)]
                )
            table *= expand
        it += 1
        err = max_rel_error()
    return IPFResult(table=table, iterations=it, max_error=err, converged=err <= tol)
