"""CSV/JSON serialization for tables.

The artifact companion of the original paper ships CSVs; these helpers let
users export every reproduced table in the same spirit and reload them.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence

from repro.tabular.table import Table

__all__ = ["table_to_csv", "table_from_csv", "table_to_json", "table_from_json"]

_MISSING = ""


def table_to_csv(table: Table, path: str | Path | None = None) -> str:
    """Serialize to CSV text; also write to ``path`` when given.

    Missing values serialize to empty fields.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(table.columns)
    for rec in table.to_records():
        writer.writerow(
            [
                _MISSING if v is None or (isinstance(v, float) and v != v) else v
                for v in rec.values()
            ]
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def _parse_cell(s: str):
    if s == _MISSING:
        return None
    try:
        return int(s)
    except ValueError:
        pass
    try:
        return float(s)
    except ValueError:
        pass
    if s == "True":
        return True
    if s == "False":
        return False
    return s


def table_from_csv(source: str | Path, columns: Sequence[str] | None = None) -> Table:
    """Parse CSV text or a file path back into a Table.

    Cell types are re-inferred (int, then float, then bool, then str).
    """
    p = Path(source) if not isinstance(source, str) or "\n" not in source else None
    text = p.read_text(encoding="utf-8") if p is not None and p.exists() else str(source)
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return Table({})
    header = rows[0]
    records = [
        {h: _parse_cell(cell) for h, cell in zip(header, row)} for row in rows[1:]
    ]
    return Table.from_records(records, columns=columns or header)


def table_to_json(table: Table, path: str | Path | None = None) -> str:
    """Serialize to a JSON array of row objects (NaN → null)."""

    def clean(v):
        if isinstance(v, float) and v != v:
            return None
        return v

    records = [
        {k: clean(v) for k, v in rec.items()} for rec in table.to_records()
    ]
    text = json.dumps(records, indent=2, sort_keys=False)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def table_from_json(source: str | Path) -> Table:
    """Load a Table from JSON text or a JSON file path."""
    p = Path(source) if not isinstance(source, str) or not source.lstrip().startswith("[") else None
    text = p.read_text(encoding="utf-8") if p is not None and p.exists() else str(source)
    records = json.loads(text)
    return Table.from_records(records)
