"""Hash joins for the tabular engine."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs.context import current as _obs
from repro.tabular.column import Column
from repro.tabular.table import Table

__all__ = ["inner_join", "left_join"]


def _key_rows(table: Table, keys: Sequence[str]) -> list[tuple]:
    cols = [table.col(k).values for k in keys]
    return [tuple(col[i] for col in cols) for i in range(table.num_rows)]


def _suffix_conflicts(left: Table, right: Table, keys: Sequence[str], suffix: str) -> Table:
    renames = {
        n: n + suffix
        for n in right.columns
        if n in left.columns and n not in keys
    }
    return right.rename(renames) if renames else right


def inner_join(
    left: Table, right: Table, on: Sequence[str] | str, suffix: str = "_right"
) -> Table:
    """Inner join on equality of key columns.

    Matches every pair of rows with equal keys (many-to-many).  Non-key
    columns of ``right`` that clash with ``left`` get ``suffix``.
    Output row order: left order, then right match order — deterministic.
    """
    keys = [on] if isinstance(on, str) else list(on)
    right = _suffix_conflicts(left, right, keys, suffix)
    index: dict[tuple, list[int]] = {}
    for j, key in enumerate(_key_rows(right, keys)):
        index.setdefault(key, []).append(j)
    li: list[int] = []
    ri: list[int] = []
    for i, key in enumerate(_key_rows(left, keys)):
        for j in index.get(key, ()):
            li.append(i)
            ri.append(j)
    lidx = np.array(li, dtype=np.int64)
    ridx = np.array(ri, dtype=np.int64)
    out = left.take(lidx)
    rtaken = right.take(ridx)
    for n in rtaken.columns:
        if n not in keys:
            out = out.with_column(n, rtaken.col(n))
    m = _obs().metrics
    if m.enabled:
        m.inc("tabular.join.calls")
        m.inc("tabular.join.rows_out", out.num_rows)
    return out


def left_join(
    left: Table, right: Table, on: Sequence[str] | str, suffix: str = "_right"
) -> Table:
    """Left join; unmatched left rows get missing values on right columns.

    ``right`` must be unique on the key columns (one-to-at-most-one);
    duplicate right keys raise to avoid silent row multiplication.
    """
    keys = [on] if isinstance(on, str) else list(on)
    right = _suffix_conflicts(left, right, keys, suffix)
    index: dict[tuple, int] = {}
    for j, key in enumerate(_key_rows(right, keys)):
        if key in index:
            raise ValueError(f"left_join right side has duplicate key {key!r}")
        index[key] = j
    match = np.array(
        [index.get(key, -1) for key in _key_rows(left, keys)], dtype=np.int64
    )
    out = left
    matched = match >= 0
    safe = np.where(matched, match, 0)
    for n in right.columns:
        if n in keys:
            continue
        col = right.col(n)
        if len(col) == 0:
            # empty right side: every left row is unmatched
            if col.kind == "str":
                empty = np.empty(len(left), dtype=object)
                out = out.with_column(n, Column(n, empty, kind="str"))
            else:
                out = out.with_column(
                    n, Column(n, np.full(len(left), np.nan), kind="float")
                )
            continue
        vals = col.values[safe]
        if col.kind == "str":
            merged = np.empty(len(left), dtype=object)
            merged[:] = vals
            merged[~matched] = None
            out = out.with_column(n, Column(n, merged, kind="str"))
        elif col.kind == "float":
            merged = vals.astype(np.float64).copy()
            merged[~matched] = np.nan
            out = out.with_column(n, Column(n, merged, kind="float"))
        else:
            # int/bool cannot hold missing: promote to float with NaN when
            # there are unmatched rows, else keep native kind.
            if matched.all():
                out = out.with_column(n, Column(n, vals, kind=col.kind))
            else:
                merged = vals.astype(np.float64)
                merged[~matched] = np.nan
                out = out.with_column(n, Column(n, merged, kind="float"))
    m = _obs().metrics
    if m.enabled:
        m.inc("tabular.join.calls")
        m.inc("tabular.join.rows_out", out.num_rows)
    return out
