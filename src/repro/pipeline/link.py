"""Identity resolution across harvested sources.

Names observed on committee pages, program pages, and author lists are
unified into researcher records by normalized name key (accent-folded,
case-insensitive).  This matches the original study's practice — and its
known failure mode: two distinct researchers with the same name merge
into one record.  The synthetic world's name banks produce collisions at
a realistic rate, and the pipeline-fidelity tests measure the effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.confmodel.roles import Role
from repro.harvest.scrape import HarvestedConference
from repro.names.parsing import cached_name_key, name_key

__all__ = ["ResearcherRecord", "LinkedPaper", "LinkedData", "link_identities"]

_ROLE_BY_CLASS = {
    "pc-chair": Role.PC_CHAIR,
    "pc-member": Role.PC_MEMBER,
    "keynote": Role.KEYNOTE,
    "panelist": Role.PANELIST,
    "session-chair": Role.SESSION_CHAIR,
}


@dataclass
class ResearcherRecord:
    """A researcher as reconstructed from harvested names."""

    researcher_id: str
    full_name: str            # first-observed spelling
    name_key: str
    emails: list[str] = field(default_factory=list)
    roles: list[tuple[str, int, Role]] = field(default_factory=list)

    @property
    def is_author(self) -> bool:
        return any(r[2] is Role.AUTHOR for r in self.roles)

    @property
    def is_pc_member(self) -> bool:
        return any(r[2] is Role.PC_MEMBER for r in self.roles)

    def conferences(self) -> set[str]:
        return {c for c, _, _ in self.roles}


@dataclass(frozen=True)
class LinkedPaper:
    """A paper with author names resolved to researcher ids."""

    paper_id: str
    conference: str
    year: int
    title: str
    author_ids: tuple[str, ...]
    citations_36mo: int | None
    is_hpc_topic: bool | None


@dataclass
class LinkedData:
    """Output of identity resolution."""

    researchers: dict[str, ResearcherRecord] = field(default_factory=dict)
    papers: list[LinkedPaper] = field(default_factory=list)
    conferences: list[HarvestedConference] = field(default_factory=list)

    def by_name(self, full_name: str) -> ResearcherRecord | None:
        key = name_key(full_name)
        for r in self.researchers.values():
            if r.name_key == key:
                return r
        return None


def link_identities(harvested: list[HarvestedConference]) -> LinkedData:
    """Unify names across all harvested conferences."""
    out = LinkedData(conferences=list(harvested))
    by_key: dict[str, ResearcherRecord] = {}
    counter = 0

    def resolve(full_name: str) -> ResearcherRecord:
        nonlocal counter
        # same spelling recurs once per role/paper observation; the
        # cached key skips re-normalizing it every time
        key = cached_name_key(full_name)
        rec = by_key.get(key)
        if rec is None:
            rec = ResearcherRecord(
                researcher_id=f"r{counter:06d}", full_name=full_name, name_key=key
            )
            counter += 1
            by_key[key] = rec
            out.researchers[rec.researcher_id] = rec
        return rec

    for conf in harvested:
        # committee/program roles
        for role in conf.roles:
            mapped = _ROLE_BY_CLASS.get(role.role)
            if mapped is None:
                continue  # unknown css class: tolerate site evolution
            rec = resolve(role.full_name)
            rec.roles.append((conf.conference, conf.year, mapped))
        # papers
        for paper in conf.papers:
            ids = []
            for name, email in zip(paper.author_names, paper.author_emails):
                rec = resolve(name)
                rec.roles.append((conf.conference, conf.year, Role.AUTHOR))
                if email and email not in rec.emails:
                    rec.emails.append(email)
                ids.append(rec.researcher_id)
            out.papers.append(
                LinkedPaper(
                    paper_id=paper.paper_id,
                    conference=conf.conference,
                    year=conf.year,
                    title=paper.title,
                    author_ids=tuple(ids),
                    citations_36mo=paper.citations_36mo,
                    is_hpc_topic=paper.is_hpc_topic,
                )
            )
    return out
