"""Property-based tests for the tabular engine (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tabular import Table, inner_join, left_join, table_from_csv, table_from_json, table_to_csv, table_to_json

# strategies -----------------------------------------------------------------

_cell = st.one_of(
    st.none(),
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(blacklist_categories=["Cs", "Cc"]),
        max_size=12,
    ),
    st.booleans(),
)


@st.composite
def tables(draw, max_rows=8, max_cols=4):
    n_cols = draw(st.integers(1, max_cols))
    n_rows = draw(st.integers(0, max_rows))
    names = [f"c{i}" for i in range(n_cols)]
    # each column homogeneous-ish: pick a strategy per column
    data = {}
    for name in names:
        col_strategy = draw(
            st.sampled_from(
                [
                    st.integers(-1000, 1000),
                    st.floats(allow_nan=False, allow_infinity=False, width=32),
                    st.one_of(st.none(), st.text(max_size=8)),
                    st.booleans(),
                ]
            )
        )
        data[name] = draw(
            st.lists(col_strategy, min_size=n_rows, max_size=n_rows)
        )
    return Table(data)


# tests ------------------------------------------------------------------------


class TestRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(tables())
    def test_records_roundtrip(self, t):
        back = Table.from_records(t.to_records(), columns=t.columns)
        assert back.num_rows == t.num_rows
        assert back.columns == t.columns

    @settings(max_examples=40, deadline=None)
    @given(tables())
    def test_json_roundtrip_row_count(self, t):
        back = table_from_json(table_to_json(t))
        assert back.num_rows == t.num_rows

    @settings(max_examples=30, deadline=None)
    @given(tables())
    def test_filter_all_true_is_identity(self, t):
        mask = np.ones(t.num_rows, dtype=bool)
        assert t.filter(mask).num_rows == t.num_rows

    @settings(max_examples=30, deadline=None)
    @given(tables())
    def test_take_reverse_twice_is_identity(self, t):
        idx = np.arange(t.num_rows)[::-1]
        twice = t.take(idx).take(idx)
        assert twice.equals(t)


class TestSortProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-50, 50), min_size=0, max_size=30))
    def test_sort_sorts(self, values):
        t = Table({"x": values}).sort_by("x")
        out = t["x"].tolist()
        assert out == sorted(values)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=0, max_size=30))
    def test_sort_desc_reverses_order(self, values):
        t = Table({"x": values})
        asc = t.sort_by("x")["x"].tolist()
        desc = t.sort_by("x", descending=True)["x"].tolist()
        assert desc == sorted(values, reverse=True)
        assert asc == sorted(values)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 100)), min_size=0, max_size=25))
    def test_sort_is_stable(self, pairs):
        t = Table({"k": [p[0] for p in pairs], "tag": [p[1] for p in pairs]})
        out = t.sort_by("k")
        # within equal keys, original order of tags preserved
        seen: dict[int, list[int]] = {}
        for k, tag in zip(out["k"], out["tag"]):
            seen.setdefault(int(k), []).append(int(tag))
        expected: dict[int, list[int]] = {}
        for k, tag in pairs:
            expected.setdefault(k, []).append(tag)
        assert seen == expected


class TestGroupJoinProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40))
    def test_group_sizes_partition_rows(self, keys):
        t = Table({"k": keys})
        sizes = t.groupby("k").size()
        assert sum(sizes["count"]) == t.num_rows

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 5), min_size=0, max_size=20),
        st.lists(st.integers(0, 5), min_size=0, max_size=6),
    )
    def test_inner_join_row_count(self, left_keys, right_keys_raw):
        right_keys = list(dict.fromkeys(right_keys_raw))  # unique
        left = Table({"k": left_keys})
        right = Table({"k": right_keys, "v": list(range(len(right_keys)))})
        joined = inner_join(left, right, on="k")
        expected = sum(1 for k in left_keys if k in set(right_keys))
        assert joined.num_rows == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 5), min_size=0, max_size=20),
        st.lists(st.integers(0, 5), min_size=0, max_size=6),
    )
    def test_left_join_preserves_rows(self, left_keys, right_keys_raw):
        right_keys = list(dict.fromkeys(right_keys_raw))
        left = Table({"k": left_keys})
        right = Table({"k": right_keys, "v": list(range(len(right_keys)))})
        joined = left_join(left, right, on="k")
        assert joined.num_rows == left.num_rows
