"""Forecast scenarios and the years-to-share computation.

Scenario presets (all start from the paper's measured 2017 state — ~10%
women with the Fig. 6 band mix):

- ``status_quo``     — entry share stays at the current novice female
  share (~11%), attrition slightly higher for women at the junior step
  (the "leaky pipeline" the paper's citations describe);
- ``parity_entry``   — entry share jumps to 50% (the most optimistic
  recruiting intervention) with unchanged attrition;
- ``retention_fix``  — entry unchanged but attrition equalized
  (the intervention aimed at the paper's seniority-gap finding);
- ``combined``       — both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.forecast.cohort import CohortModel, CohortRates, CohortState

__all__ = ["SCENARIOS", "ScenarioProjection", "project_scenario", "years_to_share"]

#: Band mix at the 2017 starting point (close to Fig. 6's author mix).
_START_BANDS = {
    "F": {"novice": 0.50, "mid-career": 0.30, "experienced": 0.20},
    "M": {"novice": 0.40, "mid-career": 0.31, "experienced": 0.29},
}

_BASE_M = CohortRates(
    attrition={"novice": 0.10, "mid-career": 0.06, "experienced": 0.08},
    progression={"novice": 0.18, "mid-career": 0.12},
)
#: women's junior attrition elevated (leaky pipeline)
_BASE_F = CohortRates(
    attrition={"novice": 0.14, "mid-career": 0.08, "experienced": 0.08},
    progression={"novice": 0.16, "mid-career": 0.11},
)
_EQUAL_F = CohortRates(
    attrition=dict(_BASE_M.attrition),
    progression=dict(_BASE_M.progression),
)


@dataclass(frozen=True)
class Scenario:
    name: str
    rates_f: CohortRates
    rates_m: CohortRates
    entry_female_share: float
    description: str


SCENARIOS: dict[str, Scenario] = {
    "status_quo": Scenario(
        "status_quo", _BASE_F, _BASE_M, 0.11,
        "current entry mix, leaky pipeline persists",
    ),
    "parity_entry": Scenario(
        "parity_entry", _BASE_F, _BASE_M, 0.50,
        "50% women among new entrants, attrition unchanged",
    ),
    "retention_fix": Scenario(
        "retention_fix", _EQUAL_F, _BASE_M, 0.11,
        "attrition equalized, entry mix unchanged",
    ),
    "combined": Scenario(
        "combined", _EQUAL_F, _BASE_M, 0.50,
        "parity entry + equalized attrition",
    ),
}


@dataclass(frozen=True)
class ScenarioProjection:
    """Yearly female shares under one scenario."""

    scenario: str
    start_year: int
    shares: tuple[float, ...]          # year 0..N female share
    novice_shares: tuple[float, ...]

    def share_in(self, years_ahead: int) -> float:
        return self.shares[min(years_ahead, len(self.shares) - 1)]


def project_scenario(
    name: str,
    years: int = 60,
    start_total: float = 1885.0,
    start_female_share: float = 0.099,
    start_year: int = 2017,
    entry_rate: float = 0.12,
) -> ScenarioProjection:
    """Project a scenario forward.

    ``entry_rate`` is the annual inflow as a fraction of the starting
    population (≈ the churn implied by the mostly-student novice band).
    """
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}")
    sc = SCENARIOS[name]
    state = CohortState.from_shares(start_total, start_female_share, _START_BANDS)
    model = CohortModel(
        rates={"F": sc.rates_f, "M": sc.rates_m},
        entry_size=start_total * entry_rate,
        entry_female_share=sc.entry_female_share,
    )
    states = model.project(state, years)
    return ScenarioProjection(
        scenario=name,
        start_year=start_year,
        shares=tuple(s.female_share() for s in states),
        novice_shares=tuple(s.female_share_in_band("novice") for s in states),
    )


def years_to_share(projection: ScenarioProjection, target: float) -> int | None:
    """First year-offset at which the female share reaches ``target``.

    None when the horizon never reaches it (e.g. status quo vs parity).
    """
    for i, share in enumerate(projection.shares):
        if share >= target:
            return i
    return None
