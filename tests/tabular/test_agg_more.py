"""Additional aggregation and concat-semantics tests."""

import numpy as np
import pytest

from repro.tabular import Table, count, mean, nan_mean, rate, share, total


@pytest.fixture
def table():
    return Table(
        {
            "g": ["a", "a", "b", "b", "b"],
            "x": [1.0, np.nan, 3.0, 4.0, 5.0],
            "won": [True, False, True, True, False],
        }
    )


class TestAggregators:
    def test_count(self, table):
        out = table.groupby("g").agg(n=count())
        assert {r["g"]: r["n"] for r in out.to_records()} == {"a": 2, "b": 3}

    def test_total_nan_aware(self, table):
        out = table.groupby("g").agg(s=total("x"))
        rec = {r["g"]: r["s"] for r in out.to_records()}
        assert rec["a"] == 1.0
        assert rec["b"] == 12.0

    def test_mean_vs_nan_mean(self, table):
        m = table.groupby("g").agg(m=mean("x"), nm=nan_mean("x"))
        rec = {r["g"]: r for r in m.to_records()}
        assert np.isnan(rec["a"]["m"])       # mean propagates NaN
        assert rec["a"]["nm"] == 1.0         # nan_mean ignores it

    def test_share_on_bool(self, table):
        out = table.groupby("g").agg(w=share("won", True))
        rec = {r["g"]: r["w"] for r in out.to_records()}
        assert rec["a"] == 0.5
        assert rec["b"] == pytest.approx(2 / 3)

    def test_rate_combinator(self, table):
        out = table.groupby("g").agg(
            per_row=rate(total("x"), lambda g: float(g.num_rows))
        )
        rec = {r["g"]: r["per_row"] for r in out.to_records()}
        assert rec["b"] == pytest.approx(4.0)

    def test_rate_zero_denominator(self):
        t = Table({"g": ["a"], "x": [1.0]})
        out = t.groupby("g").agg(r=rate(total("x"), lambda g: 0.0))
        assert np.isnan(out.to_records()[0]["r"])


class TestConcatPromotion:
    def test_int_plus_float_promotes(self):
        a = Table({"x": [1, 2]})
        b = Table({"x": [1.5]})
        merged = a.concat(b)
        assert merged.col("x").kind == "float"

    def test_str_wins(self):
        a = Table({"x": ["p"]})
        b = Table({"x": ["q"]})
        assert a.concat(b).col("x").kind == "str"

    def test_empty_concat(self):
        a = Table({"x": [1]})
        b = Table({"x": []})
        assert a.concat(b).num_rows == 1
