"""Ready-made aggregation callables for ``GroupBy.agg``.

Each helper declares the columns it reads via a ``columns`` attribute on
the returned callable.  When every aggregation passed to
:meth:`~repro.tabular.groupby.GroupBy.agg` carries the attribute, the
per-group sub-tables are pruned to exactly those columns — the analysis
hot path then materializes one or two columns per group instead of the
whole table width.  Hand-written lambdas (no attribute) simply disable
the pruning for that call.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tabular.table import Table

__all__ = ["count", "total", "mean", "nan_mean", "share", "rate"]


def _declares(fn: Callable, columns: Sequence[str]) -> Callable:
    fn.columns = tuple(columns)
    return fn


def count() -> Callable[[Table], int]:
    """Number of rows in the group."""
    return _declares(lambda g: g.num_rows, ())


def total(name: str) -> Callable[[Table], float]:
    """Sum of a numeric column (NaN-aware)."""
    return _declares(lambda g: float(np.nansum(g[name].astype(np.float64))), (name,))


def mean(name: str) -> Callable[[Table], float]:
    """Mean of a numeric column; NaN if the group is empty."""

    def _mean(g: Table) -> float:
        v = g[name].astype(np.float64)
        return float(np.mean(v)) if v.size else float("nan")

    return _declares(_mean, (name,))


def nan_mean(name: str) -> Callable[[Table], float]:
    """Mean ignoring NaN entries; NaN if no observed values."""

    def _mean(g: Table) -> float:
        v = g[name].astype(np.float64)
        obs = v[~np.isnan(v)]
        return float(np.mean(obs)) if obs.size else float("nan")

    return _declares(_mean, (name,))


def share(name: str, value) -> Callable[[Table], float]:
    """Fraction of rows whose column equals ``value`` (missing excluded).

    This is the workhorse of the reproduction: ``share("gender", "F")``
    computes the female ratio of a group among rows with known gender.
    """

    def _share(g: Table) -> float:
        col = g.col(name)
        miss = col.is_missing()
        denom = int((~miss).sum())
        if denom == 0:
            return float("nan")
        hits = int(np.sum((col.values == value) & ~miss))
        return hits / denom

    return _declares(_share, (name,))


def rate(numerator: Callable[[Table], float], denominator: Callable[[Table], float]):
    """Ratio of two aggregations; NaN when the denominator is zero."""

    def _rate(g: Table) -> float:
        d = denominator(g)
        if not d:
            return float("nan")
        return numerator(g) / d

    num_cols = getattr(numerator, "columns", None)
    den_cols = getattr(denominator, "columns", None)
    if num_cols is not None and den_cols is not None:
        _declares(_rate, tuple(dict.fromkeys((*num_cols, *den_cols))))
    return _rate
