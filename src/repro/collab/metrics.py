"""Collaboration metrics by gender.

The questions the paper's future-work section poses, made concrete:

- do women and men differ in number of distinct collaborators (degree)?
- in team size of the papers they appear on?
- do researchers collaborate preferentially within gender (homophily)?
- how common are solo papers, all-male teams, teams with no women?
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.pipeline.dataset import AnalysisDataset
from repro.stats.descriptive import Summary, describe
from repro.stats.ttest import TTestResult, welch_ttest

__all__ = ["CollaborationReport", "collaboration_report"]


@dataclass(frozen=True)
class CollaborationReport:
    """Collaboration-pattern statistics by gender."""

    degree_women: Summary            # distinct coauthors per woman
    degree_men: Summary
    degree_test: TTestResult
    team_size_women: Summary         # sizes of papers women appear on
    team_size_men: Summary
    team_size_test: TTestResult
    assortativity: float             # gender assortativity of the graph
    share_mixed_edges: float         # F–M edges / all known-gender edges
    expected_mixed_edges: float      # under random mixing at observed FAR
    solo_rate_women: float           # share of women's positions on solo papers
    solo_rate_men: float
    all_male_paper_share: float      # papers with no known-gender woman
    components: int
    largest_component: int


def _gender_of(g: nx.Graph, node) -> str | None:
    return g.nodes[node].get("gender")


def collaboration_report(ds: AnalysisDataset) -> CollaborationReport:
    """Compute collaboration patterns over the coauthorship graph."""
    from repro.collab.network import build_coauthorship_graph

    g = build_coauthorship_graph(ds)

    deg_f = np.array(
        [d for n, d in g.degree() if _gender_of(g, n) == "F"], dtype=float
    )
    deg_m = np.array(
        [d for n, d in g.degree() if _gender_of(g, n) == "M"], dtype=float
    )

    # team sizes per position, by the position-holder's gender
    pos = ds.author_positions
    sizes_by_paper = {
        pid: n
        for pid, n in zip(ds.papers["paper_id"], ds.papers["num_authors"])
    }
    team_f, team_m = [], []
    solo_f = solo_m = 0
    for pid, gender in zip(pos["paper_id"], pos["gender"]):
        size = sizes_by_paper.get(pid)
        if size is None or gender is None:
            continue
        if gender == "F":
            team_f.append(size)
            solo_f += size == 1
        else:
            team_m.append(size)
            solo_m += size == 1

    # homophily
    known_edges = [
        (u, v)
        for u, v in g.edges()
        if _gender_of(g, u) in ("F", "M") and _gender_of(g, v) in ("F", "M")
    ]
    mixed = sum(1 for u, v in known_edges if _gender_of(g, u) != _gender_of(g, v))
    share_mixed = mixed / len(known_edges) if known_edges else float("nan")
    known_nodes = [n for n in g.nodes if _gender_of(g, n) in ("F", "M")]
    p_f = (
        sum(1 for n in known_nodes if _gender_of(g, n) == "F") / len(known_nodes)
        if known_nodes
        else float("nan")
    )
    expected_mixed = 2 * p_f * (1 - p_f)
    try:
        assort = float(
            nx.attribute_assortativity_coefficient(
                g.subgraph(known_nodes), "gender"
            )
        )
    except (ZeroDivisionError, ValueError):  # degenerate graphs
        assort = float("nan")

    # papers with no known-gender women
    women_on_paper: dict[str, int] = {}
    known_on_paper: dict[str, int] = {}
    for pid, gender in zip(pos["paper_id"], pos["gender"]):
        if gender is None:
            continue
        known_on_paper[pid] = known_on_paper.get(pid, 0) + 1
        if gender == "F":
            women_on_paper[pid] = women_on_paper.get(pid, 0) + 1
    papers_known = [pid for pid, k in known_on_paper.items() if k > 0]
    all_male = sum(1 for pid in papers_known if women_on_paper.get(pid, 0) == 0)

    components = list(nx.connected_components(g))

    return CollaborationReport(
        degree_women=describe(deg_f),
        degree_men=describe(deg_m),
        degree_test=welch_ttest(deg_f, deg_m),
        team_size_women=describe(np.array(team_f, dtype=float)),
        team_size_men=describe(np.array(team_m, dtype=float)),
        team_size_test=welch_ttest(
            np.array(team_f, dtype=float), np.array(team_m, dtype=float)
        ),
        assortativity=assort,
        share_mixed_edges=share_mixed,
        expected_mixed_edges=expected_mixed,
        solo_rate_women=solo_f / len(team_f) if team_f else float("nan"),
        solo_rate_men=solo_m / len(team_m) if team_m else float("nan"),
        all_male_paper_share=all_male / len(papers_known) if papers_known else float("nan"),
        components=len(components),
        largest_component=max((len(c) for c in components), default=0),
    )
