"""Tests for citation attractiveness calibration."""

import numpy as np
import pytest

from repro.synth.citegen import (
    LOGNORMAL_PARAMS,
    OUTLIER_LAMBDA_36MO,
    draw_attractiveness,
    expected_i10_share,
    expected_mean,
)


class TestParameters:
    def test_male_mean_matches_fig2(self):
        assert expected_mean("M") == pytest.approx(10.55, rel=0.05)

    def test_female_mean_near_fig2_no_outlier(self):
        assert expected_mean("F") == pytest.approx(7.63, rel=0.2)

    def test_i10_ordering(self):
        assert expected_i10_share("F") < expected_i10_share("M")
        assert 0.15 < expected_i10_share("F") < 0.35
        assert 0.30 < expected_i10_share("M") < 0.45

    def test_outlier_lambda_from_paper_means(self):
        implied = 53 * 13.04 - 52 * 7.63
        assert OUTLIER_LAMBDA_36MO == pytest.approx(implied, rel=0.02)


class TestDraws:
    def test_sample_means(self):
        rng = np.random.default_rng(0)
        lam = draw_attractiveness(["M"] * 20000, rng)
        assert lam.mean() == pytest.approx(expected_mean("M"), rel=0.05)

    def test_outlier_designation(self):
        rng = np.random.default_rng(1)
        genders = ["M", "F", "M", "F"]
        lam = draw_attractiveness(genders, rng, outlier_index=1)
        assert lam[1] == OUTLIER_LAMBDA_36MO

    def test_outlier_must_be_female(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            draw_attractiveness(["M", "F"], rng, outlier_index=0)

    def test_unknown_gender_uses_male_params(self):
        rng = np.random.default_rng(3)
        lam = draw_attractiveness(["U"] * 5000, rng)
        assert lam.mean() == pytest.approx(expected_mean("M"), rel=0.1)
