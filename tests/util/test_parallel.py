"""Tests for the deterministic parallel map."""

import os

import pytest

from repro.util.parallel import ParallelConfig, TaskError, parallel_map


def _square(x: int) -> int:
    return x * x


def _square_unless_13(x: int) -> int:
    if x == 13:
        raise ValueError(f"unlucky item {x}")
    return x * x


def _seeded_draw(item):
    """A worker whose randomness derives from its item key."""
    from repro.util.rng import spawn_rng

    key, root = item
    return float(spawn_rng(root, "draw", key).random())


class TestSerial:
    def test_matches_list_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_order_preserved(self):
        out = parallel_map(_square, [3, 1, 2])
        assert out == [9, 1, 4]


class TestParallel:
    def test_parallel_equals_serial(self):
        items = list(range(32))
        serial = parallel_map(_square, items, ParallelConfig(workers=1))
        par = parallel_map(_square, items, ParallelConfig(workers=4, min_items_per_worker=1))
        assert serial == par

    def test_seeded_randomness_independent_of_workers(self):
        items = [(f"item{i}", 99) for i in range(16)]
        one = parallel_map(_seeded_draw, items, ParallelConfig(workers=1))
        four = parallel_map(
            _seeded_draw, items, ParallelConfig(workers=4, min_items_per_worker=1)
        )
        assert one == four

    def test_small_inputs_stay_serial(self):
        cfg = ParallelConfig(workers=8, min_items_per_worker=4)
        assert cfg.resolved_workers(8) == 1  # 8 < 8*4
        assert cfg.resolved_workers(64) == 8

    def test_workers_none_uses_cpu_count(self):
        cfg = ParallelConfig(workers=None, min_items_per_worker=1)
        assert cfg.resolved_workers(10_000) == min(os.cpu_count() or 1, 10_000)

    def test_workers_capped_by_items(self):
        cfg = ParallelConfig(workers=64, min_items_per_worker=1)
        # 3 items < 64 workers * 1 item each -> serial is cheaper
        assert cfg.resolved_workers(3) == 1
        # with enough items, the cap is the item count vs worker count
        assert cfg.resolved_workers(64) == 64
        assert cfg.resolved_workers(100) == 64


class TestCaptureErrors:
    def test_error_becomes_task_error_in_place(self):
        out = parallel_map(_square_unless_13, [12, 13, 14], capture_errors=True)
        assert out[0] == 144 and out[2] == 196
        assert out[1] == TaskError(kind="ValueError", message="unlucky item 13")

    def test_serial_and_parallel_capture_identically(self):
        items = list(range(20))
        serial = parallel_map(_square_unless_13, items, capture_errors=True)
        par = parallel_map(
            _square_unless_13,
            items,
            ParallelConfig(workers=4, min_items_per_worker=1),
            capture_errors=True,
        )
        assert serial == par
        assert sum(isinstance(r, TaskError) for r in serial) == 1

    def test_surviving_results_keep_their_order(self):
        out = parallel_map(_square_unless_13, [13, 1, 13, 2], capture_errors=True)
        survivors = [r for r in out if not isinstance(r, TaskError)]
        assert survivors == [1, 4]

    def test_without_capture_the_error_propagates(self):
        with pytest.raises(ValueError, match="unlucky item 13"):
            parallel_map(_square_unless_13, [13])
        with pytest.raises(ValueError, match="unlucky item 13"):
            parallel_map(
                _square_unless_13,
                list(range(20)),
                ParallelConfig(workers=4, min_items_per_worker=1),
            )

    def test_task_error_is_picklable(self):
        import pickle

        err = TaskError(kind="ValueError", message="boom")
        assert pickle.loads(pickle.dumps(err)) == err
