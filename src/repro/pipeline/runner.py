"""End-to-end pipeline driver."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gender.resolver import ResolverPolicy
from repro.harvest.webindex import build_name_keyed_evidence
from repro.pipeline.dataset import AnalysisDataset
from repro.pipeline.enrich import enrich_researchers
from repro.pipeline.infer import InferenceOutcome, infer_genders
from repro.pipeline.ingest import ingest_world
from repro.pipeline.link import LinkedData, link_identities
from repro.synth.config import WorldConfig
from repro.synth.world import SyntheticWorld, build_world
from repro.util.parallel import ParallelConfig
from repro.util.timing import StageTimer

__all__ = ["PipelineResult", "run_pipeline"]


@dataclass
class PipelineResult:
    """Everything a caller might want from a full run."""

    world: SyntheticWorld
    linked: LinkedData
    dataset: AnalysisDataset
    inference: InferenceOutcome
    timer: StageTimer = field(default_factory=StageTimer)

    @property
    def coverage(self) -> dict[str, float]:
        return self.inference.coverage


def run_pipeline(
    config: WorldConfig | None = None,
    world: SyntheticWorld | None = None,
    parallel: ParallelConfig | None = None,
    policy: ResolverPolicy | None = None,
) -> PipelineResult:
    """Build (or reuse) a world and run every pipeline stage.

    Parameters
    ----------
    config:
        World configuration; ignored when ``world`` is given.
    world:
        A pre-built world (e.g. a shared test fixture).
    parallel:
        Parallel policy for the ingest stage (serial by default).
    policy:
        Gender-resolver policy (paper defaults: manual + genderize@0.70).
    """
    timer = StageTimer()
    if world is None:
        with timer.stage("build_world"):
            world = build_world(config)
    with timer.stage("ingest"):
        harvested = ingest_world(world, parallel=parallel)
    with timer.stage("link"):
        linked = link_identities(harvested)
    with timer.stage("enrich"):
        enrichment = enrich_researchers(linked, world.gs_store, world.s2_store)
    with timer.stage("infer"):
        name_evidence, name_truth = build_name_keyed_evidence(
            world.registry, world.evidence_availability, world.true_genders
        )
        inference = infer_genders(
            linked,
            name_evidence,
            name_truth,
            seed=world.seed,
            policy=policy,
            photo_error_rate=world.config.photo_error_rate,
        )
    with timer.stage("dataset"):
        dataset = AnalysisDataset.build(linked, enrichment, inference.assignments)
    return PipelineResult(
        world=world,
        linked=linked,
        dataset=dataset,
        inference=inference,
        timer=timer,
    )
