"""Deterministic data-parallel map.

The harvesting stage of the pipeline processes one conference per task and
the bootstrap machinery processes one resample batch per task.  Both are
embarrassingly parallel, so we provide a single primitive: a chunked
process-pool map whose result is *bit-identical* regardless of the number
of workers.

Determinism comes from two rules (the classic MPI-style decomposition
discipline):

1. Any randomness a task needs must derive from ``(root_seed, item_key)``
   (see :mod:`repro.util.rng`), never from a shared generator, so results
   do not depend on scheduling.
2. Results are returned in input order, never completion order.

``parallel_map`` falls back to a serial loop when ``workers <= 1`` or when
the input is small, since process startup dominates for the problem sizes
in this reproduction.  The serial and parallel paths are exercised against
each other in the test suite.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["ParallelConfig", "TaskError", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class TaskError:
    """A captured per-task failure.

    Holds only the exception's class name and message — both identical
    whether the task ran in-process or in a worker — so the serial and
    parallel paths produce *equal* result lists for the same poisoned
    input, and the error occupies the failed item's slot without
    disturbing the ordering of surviving results.
    """

    kind: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}: {self.message}"


class _CaptureErrors:
    """Picklable wrapper turning task exceptions into :class:`TaskError`."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable) -> None:
        self._fn = fn

    def __call__(self, item):
        try:
            return self._fn(item)
        except Exception as exc:
            return TaskError(kind=type(exc).__name__, message=str(exc))


@dataclass(frozen=True)
class ParallelConfig:
    """Execution policy for :func:`parallel_map`.

    Attributes
    ----------
    workers:
        Number of worker processes; ``0`` or ``1`` means serial. ``None``
        selects ``os.cpu_count()``.
    min_items_per_worker:
        If the input has fewer than ``workers * min_items_per_worker``
        items, run serially — spawning processes would cost more than it
        saves.
    chunksize:
        Items submitted to a worker per IPC round-trip.
    """

    workers: int | None = 0
    min_items_per_worker: int = 2
    chunksize: int = 1

    def resolved_workers(self, n_items: int) -> int:
        w = os.cpu_count() or 1 if self.workers is None else self.workers
        if w <= 1:
            return 1
        if n_items < w * self.min_items_per_worker:
            return 1
        return min(w, n_items)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig | None = None,
    capture_errors: bool = False,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order.

    ``fn`` must be picklable (module-level) when running with more than
    one worker.  The output is identical to ``[fn(x) for x in items]`` by
    construction.

    With ``capture_errors=True`` a raising task yields a
    :class:`TaskError` in its slot instead of poisoning the whole map:
    one bad item no longer kills the ``ProcessPoolExecutor`` (or the
    serial loop), and both paths return the same captured error.
    """
    seq: Sequence[T] = list(items)
    cfg = config or ParallelConfig()
    if capture_errors:
        fn = _CaptureErrors(fn)
    workers = cfg.resolved_workers(len(seq))
    if workers <= 1 or not seq:
        return [fn(x) for x in seq]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, seq, chunksize=max(1, cfg.chunksize)))
