"""Harvesting: synthetic conference websites and their scraping.

The original study scraped conference websites and proceedings.  Without
a network, we generate the websites *from the ground-truth world* and
scrape them back, so the parse/extract/reconcile code path is fully
exercised and testable (round-trip tests + injected malformations).

- :mod:`repro.harvest.html`        — a minimal HTML builder and parser
  (tokenizer → element tree → class/tag queries).
- :mod:`repro.harvest.sitegen`     — conference website generator
  (index, committees, program, papers pages).
- :mod:`repro.harvest.proceedings` — proceedings records with author
  emails embedded in the full text.
- :mod:`repro.harvest.scrape`      — parses the website back into
  structured records.
- :mod:`repro.harvest.dblp`        — a DBLP-flavoured XML export/import
  of the paper records (alternative ingest path).
- :mod:`repro.harvest.webindex`    — the simulated personal-web lookup
  used by the manual gender-assignment step (name-keyed, ambiguity-aware).
"""

from repro.harvest.html import HtmlElement, parse_html, el, render
from repro.harvest.sitegen import generate_site, ConferenceSite
from repro.harvest.proceedings import ProceedingsRecord, build_proceedings
from repro.harvest.scrape import (
    scrape_site,
    HarvestedConference,
    HarvestedPaper,
    HarvestedRole,
)
from repro.harvest.dblp import to_dblp_xml, from_dblp_xml
from repro.harvest.webindex import build_name_keyed_evidence

__all__ = [
    "HtmlElement",
    "parse_html",
    "el",
    "render",
    "generate_site",
    "ConferenceSite",
    "ProceedingsRecord",
    "build_proceedings",
    "scrape_site",
    "HarvestedConference",
    "HarvestedPaper",
    "HarvestedRole",
    "to_dblp_xml",
    "from_dblp_xml",
    "build_name_keyed_evidence",
]
