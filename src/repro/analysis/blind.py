"""§3.1 — double-blind vs single-blind contrasts.

SC and ISC are the only double-blind conferences in the set; the paper
contrasts women's share among their authors (7.57%) against the
single-blind conferences (10.52%, χ² = 3.133, p = 0.0767), and the same
for lead authors (6.17% vs 11.79%, χ² = 1.662, p = 0.197).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq, women_share
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result
from repro.stats.proportions import Proportion, proportion_diff

__all__ = ["BlindReport", "blind_report"]


@dataclass(frozen=True)
class BlindReport:
    """Review-policy contrasts of §3.1."""

    double_blind_confs: tuple[str, ...]
    authors_double: Proportion
    authors_single: Proportion
    authors_test: Chi2Result
    lead_double: Proportion
    lead_single: Proportion
    lead_test: Chi2Result


def blind_report(ds: AnalysisDataset) -> BlindReport:
    """Compute the double- vs single-blind author contrasts."""
    confs = ds.conferences
    double = tuple(
        c
        for c, db in zip(confs["conference"], confs["double_blind"])
        if bool(db)
    )
    in_double = np.array(
        [c in double for c in ds.author_positions["conference"]], dtype=bool
    )
    positions = ds.author_positions
    pos_double = positions.filter(in_double)
    pos_single = positions.filter(~in_double)

    a_d = women_share(pos_double)
    a_s = women_share(pos_single)

    firsts_d = pos_double.filter(lambda t: mask_eq(t, "is_first", True))
    firsts_s = pos_single.filter(lambda t: mask_eq(t, "is_first", True))
    l_d = women_share(firsts_d)
    l_s = women_share(firsts_s)

    return BlindReport(
        double_blind_confs=double,
        authors_double=a_d,
        authors_single=a_s,
        authors_test=proportion_diff(a_d, a_s),
        lead_double=l_d,
        lead_single=l_s,
        lead_test=proportion_diff(l_d, l_s),
    )
