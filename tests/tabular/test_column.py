"""Tests for the Column type."""

import numpy as np
import pytest

from repro.tabular.column import Column, infer_dtype


class TestInferDtype:
    def test_ints(self):
        assert infer_dtype([1, 2, 3]) == "int"

    def test_floats(self):
        assert infer_dtype([1.0, 2]) == "float"

    def test_int_with_none_promotes_to_float(self):
        assert infer_dtype([1, None]) == "float"

    def test_strings(self):
        assert infer_dtype(["a", None]) == "str"

    def test_bools(self):
        assert infer_dtype([True, False]) == "bool"

    def test_mixed_str_wins(self):
        assert infer_dtype([1, "a"]) == "str"

    def test_empty_defaults_to_str(self):
        assert infer_dtype([]) == "str"


class TestColumn:
    def test_float_none_becomes_nan(self):
        c = Column("x", [1.0, None, 3.0])
        assert c.kind == "float"
        assert np.isnan(c.values[1])

    def test_is_missing_str(self):
        c = Column("x", ["a", None])
        assert c.is_missing().tolist() == [False, True]

    def test_is_missing_int_all_false(self):
        assert not Column("x", [1, 2]).is_missing().any()

    def test_values_readonly(self):
        c = Column("x", [1, 2])
        with pytest.raises(ValueError):
            c.values[0] = 5

    def test_take_and_mask(self):
        c = Column("x", [10, 20, 30])
        assert c.take(np.array([2, 0])).to_list() == [30, 10]
        assert c.mask(np.array([True, False, True])).to_list() == [10, 30]

    def test_unique_preserves_order(self):
        c = Column("x", ["b", "a", "b", None, "c"])
        assert c.unique() == ["b", "a", "c"]

    def test_unique_skips_nan(self):
        c = Column("x", [1.0, float("nan"), 1.0])
        assert c.unique() == [1.0]

    def test_equality_with_nan(self):
        a = Column("x", [1.0, None])
        b = Column("x", [1.0, None])
        assert a == b

    def test_inequality_different_name(self):
        assert Column("x", [1]) != Column("y", [1])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column("x", [1]))

    def test_rename(self):
        assert Column("x", [1]).rename("y").name == "y"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Column("x", [1], kind="complex")
