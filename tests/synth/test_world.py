"""Tests for the assembled world (structure + calibration)."""

from collections import Counter

import numpy as np
import pytest

from repro.calibration.targets import CONFERENCES_2017, TOTALS
from repro.confmodel.roles import Role
from repro.gender.model import Gender
from repro.scholar.metrics import h_index
from repro.synth import WorldConfig, build_world


class TestStructure:
    def test_slot_totals_exact(self, full_world):
        counts = Counter(r.role for r in full_world.registry.roles)
        assert counts[Role.AUTHOR] == TOTALS["author_positions"]
        assert counts[Role.PC_MEMBER] == TOTALS["pc_memberships"]
        assert counts[Role.PC_CHAIR] == TOTALS["pc_chairs"]
        assert counts[Role.KEYNOTE] == TOTALS["keynotes"]
        assert counts[Role.PANELIST] == TOTALS["panelists"]
        assert counts[Role.SESSION_CHAIR] == TOTALS["session_chairs"]

    def test_paper_count(self, full_world):
        assert len(full_world.registry.papers) == TOTALS["papers"]

    def test_per_conference_unique_authors(self, full_world):
        for t in CONFERENCES_2017:
            ids = set()
            for p in full_world.registry.papers_of(t.name, 2017):
                ids.update(p.author_ids())
            assert len(ids) == t.unique_authors

    def test_registry_validates(self, full_world):
        full_world.registry.validate()

    def test_hpc_tag_count(self, full_world):
        tagged = sum(1 for p in full_world.registry.papers.values() if p.is_hpc)
        assert tagged == TOTALS["hpc_papers"]

    def test_no_duplicate_author_on_paper(self, full_world):
        for p in full_world.registry.papers.values():
            ids = p.author_ids()
            assert len(ids) == len(set(ids))

    def test_gs_h_matches_career_vector(self, full_world):
        reg = full_world.registry
        for profile in list(full_world.gs_store)[:200]:
            pid = profile.profile_id.removeprefix("gs-")
            vec = np.array(reg.people[pid].career_citations, dtype=np.int64)
            assert profile.h_index == (h_index(vec) if vec.size else 0)

    def test_s2_covers_all_authors(self, full_world):
        authors = full_world.registry.unique_author_ids()
        for pid in authors:
            assert pid in full_world.s2_store


class TestCalibration:
    def test_ground_truth_far(self, full_world):
        reg = full_world.registry
        genders = [
            reg.people[r.person_id].true_gender
            for r in reg.roles
            if r.role is Role.AUTHOR
        ]
        far = sum(1 for g in genders if g is Gender.F) / len(genders)
        assert far == pytest.approx(TOTALS["far_overall"], abs=0.01)

    def test_zero_women_quota_conferences(self, full_world):
        reg = full_world.registry
        for conf in ("HPDC", "HiPC", "HPCC"):
            chairs = reg.roles_of(conf, 2017, Role.SESSION_CHAIR)
            assert chairs
            assert all(
                reg.people[r.person_id].true_gender is Gender.M for r in chairs
            )

    def test_outlier_paper_exists_and_female_led(self, full_world):
        reg = full_world.registry
        paper = reg.papers[full_world.outlier_paper_id]
        assert reg.people[paper.first_author].true_gender is Gender.F
        assert paper.citations_36mo > 150
        # crosses the paper's ">450 as of this writing" trajectory shape:
        assert sum(paper.citation_monthly) > paper.citations_36mo

    def test_timeline_has_ten_editions(self, full_world):
        assert len(full_world.timeline) == 10
        confs = {e.conference for e in full_world.timeline}
        assert confs == {"SC", "ISC"}

    def test_timeline_isc_range(self, full_world):
        isc = [e for e in full_world.timeline if e.conference == "ISC"]
        for e in isc:
            assert 0.03 <= e.far <= 0.11  # paper: 5%-9%


class TestDeterminismAndScale:
    def test_same_seed_same_world(self):
        cfg = WorldConfig(seed=123, scale=0.15, include_timeline=False)
        a = build_world(cfg)
        b = build_world(cfg)
        assert set(a.registry.papers) == set(b.registry.papers)
        pa = sorted(a.registry.people)
        pb = sorted(b.registry.people)
        assert pa == pb
        for pid in pa[:100]:
            assert a.registry.people[pid].full_name == b.registry.people[pid].full_name

    def test_different_seed_differs(self):
        a = build_world(WorldConfig(seed=1, scale=0.15, include_timeline=False))
        b = build_world(WorldConfig(seed=2, scale=0.15, include_timeline=False))
        names_a = [p.full_name for p in a.registry.people.values()]
        names_b = [p.full_name for p in b.registry.people.values()]
        assert names_a != names_b

    def test_small_scale_world_valid(self, small_world):
        small_world.registry.validate()
        assert len(small_world.registry.papers) > 50
