"""Longitudinal projection: "how long until women are equally represented?"

§6: "We plan to follow up and collect additional statistics at regular
intervals to evaluate this hypothesis."  The paper also cites Holman,
Stuart-Fox & Hauser (2018), whose title asks the question directly.
This package provides the follow-up machinery:

- :mod:`repro.forecast.cohort` — a cohort flow model of the researcher
  population (entry, attrition, seniority progression) with per-gender
  rates, projected year by year.
- :mod:`repro.forecast.scenarios` — scenario presets (status quo,
  parity-entry, retention-fix) and the years-to-X% computation.
"""

from repro.forecast.cohort import CohortModel, CohortState, CohortRates
from repro.forecast.scenarios import (
    SCENARIOS,
    project_scenario,
    years_to_share,
    ScenarioProjection,
)

__all__ = [
    "CohortModel",
    "CohortState",
    "CohortRates",
    "SCENARIOS",
    "project_scenario",
    "years_to_share",
    "ScenarioProjection",
]
