"""Benchmarks F1–F8: regenerate every figure's data series."""

from benchmarks.conftest import write_artifact
from repro.report import run_experiment


def test_fig1(benchmark, result, output_dir):
    """F1 — representation of women across conference roles."""
    payload, text = benchmark(run_experiment, "F1", result)
    write_artifact(output_dir, "F1", text)
    overall = payload["overall"]
    benchmark.extra_info["author_pct"] = round(overall["author"], 2)
    benchmark.extra_info["pc_member_pct"] = round(overall["pc_member"], 2)
    assert overall["pc_member"] > overall["author"]


def test_fig2(benchmark, result, output_dir):
    """F2 — citation densities by lead gender (paper: 13.04/10.55/7.63)."""
    payload, text = benchmark(run_experiment, "F2", result)
    write_artifact(output_dir, "F2", text)
    rep = payload["report"]
    benchmark.extra_info["mean_female"] = round(rep.mean_female, 2)
    benchmark.extra_info["mean_male"] = round(rep.mean_male, 2)
    benchmark.extra_info["mean_female_no_outlier"] = round(
        rep.mean_female_no_outlier, 2
    )
    assert rep.mean_female_no_outlier < rep.mean_male


def test_fig3(benchmark, result, output_dir):
    """F3 — GS past publications by gender and role."""
    payload, text = benchmark(run_experiment, "F3", result)
    write_artifact(output_dir, "F3", text)
    benchmark.extra_info["author_F_n"] = int(payload["authors"]["F"].size)


def test_fig4(benchmark, result, output_dir):
    """F4 — h-index distributions by gender and role."""
    payload, text = benchmark(run_experiment, "F4", result)
    write_artifact(output_dir, "F4", text)
    import numpy as np

    benchmark.extra_info["median_h_pc_M"] = float(
        np.median(payload["pc"]["M"])
    )


def test_fig5(benchmark, result, output_dir):
    """F5 — S2 publications by gender; GS↔S2 r (paper: 0.334)."""
    payload, text = benchmark(run_experiment, "F5", result)
    write_artifact(output_dir, "F5", text)
    benchmark.extra_info["gs_s2_r"] = round(payload["correlation"].r, 3)
    assert 0.1 < payload["correlation"].r < 0.65


def test_fig6(benchmark, result, output_dir):
    """F6 — experience bands (paper: 44.8% vs 36.4% novice authors)."""
    payload, text = benchmark(run_experiment, "F6", result)
    write_artifact(output_dir, "F6", text)
    rep = payload["report"]
    benchmark.extra_info["novice_F"] = round(100 * rep.novice_female_authors, 1)
    benchmark.extra_info["novice_M"] = round(100 * rep.novice_male_authors, 1)
    assert rep.novice_female_authors > rep.novice_male_authors


def test_fig7(benchmark, result, output_dir):
    """F7 — % women for countries with ≥10 authors."""
    payload, text = benchmark(run_experiment, "F7", result)
    write_artifact(output_dir, "F7", text)
    benchmark.extra_info["countries"] = len(payload["countries"])
    assert len(payload["countries"]) >= 15


def test_fig8(benchmark, result, output_dir):
    """F8 — % women by sector and role (paper: nonsignificant contrasts)."""
    payload, text = benchmark(run_experiment, "F8", result)
    write_artifact(output_dir, "F8", text)
    rep = payload["report"]
    benchmark.extra_info["author_chi2"] = round(rep.author_test.statistic, 2)
    benchmark.extra_info["pc_chi2"] = round(rep.pc_test.statistic, 2)
    assert not rep.pc_test.significant()
