"""Researcher ↔ Google Scholar profile linking.

The paper "manually identif[ied] the unique GS profile of researchers
whenever possible"; our linking uses the same criterion mechanically: a
researcher links iff exactly one profile matches their normalized name.
Researchers sharing a name with someone else therefore fail to link —
the dominant real-world cause of missing profiles after non-existence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scholar.gscholar import GoogleScholarStore, GSProfile

__all__ = ["LinkResult", "link_profiles"]


@dataclass
class LinkResult:
    """Outcome of linking a researcher set against a GS store."""

    links: dict[str, GSProfile] = field(default_factory=dict)
    ambiguous: list[str] = field(default_factory=list)  # person ids, >1 match
    missing: list[str] = field(default_factory=list)    # person ids, 0 matches

    @property
    def coverage(self) -> float:
        n = len(self.links) + len(self.ambiguous) + len(self.missing)
        return len(self.links) / n if n else float("nan")


def link_profiles(
    people: list[tuple[str, str]], store: GoogleScholarStore
) -> LinkResult:
    """Link ``(person_id, full_name)`` pairs to unique GS profiles."""
    out = LinkResult()
    for pid, name in people:
        hits = store.search(name)
        if len(hits) == 1:
            out.links[pid] = hits[0]
        elif hits:
            out.ambiguous.append(pid)
        else:
            out.missing.append(pid)
    return out
