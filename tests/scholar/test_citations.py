"""Tests for the citation accrual model."""

import numpy as np
import pytest

from repro.scholar import accrue_citations
from repro.scholar.citations import monthly_shape


class TestShape:
    def test_normalizes_to_one(self):
        assert monthly_shape(36).sum() == pytest.approx(1.0)

    def test_partial_normalization(self):
        s = monthly_shape(48, normalize_months=36)
        assert s[:36].sum() == pytest.approx(1.0)
        assert s.sum() > 1.0

    def test_ramp_then_decay(self):
        s = monthly_shape(36)
        assert s[0] < s[11]           # ramping up
        assert s[11] >= s[20] >= s[35]  # decaying after month 12

    def test_bad_args(self):
        with pytest.raises(ValueError):
            monthly_shape(0)
        with pytest.raises(ValueError):
            monthly_shape(12, normalize_months=13)


class TestAccrual:
    def test_expected_total_matches_lambda(self):
        rng = np.random.default_rng(0)
        lam = np.full(2000, 20.0)
        hists = accrue_citations(lam, rng, months=36)
        totals = np.array([h.total for h in hists])
        assert totals.mean() == pytest.approx(20.0, rel=0.05)

    def test_total_at_monotone(self):
        rng = np.random.default_rng(1)
        (h,) = accrue_citations(np.array([50.0]), rng, months=48)
        totals = [h.total_at(m) for m in range(49)]
        assert totals == sorted(totals)
        assert h.total_at(0) == 0
        assert h.total_at(99) == h.total

    def test_normalize_months_semantics(self):
        rng = np.random.default_rng(2)
        lam = np.full(3000, 30.0)
        hists = accrue_citations(lam, rng, months=48, normalize_months=36)
        at36 = np.array([h.total_at(36) for h in hists])
        assert at36.mean() == pytest.approx(30.0, rel=0.05)
        at48 = np.array([h.total for h in hists])
        assert at48.mean() > at36.mean()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            accrue_citations(np.array([-1.0]), np.random.default_rng(0))

    def test_zero_lambda_zero_citations(self):
        (h,) = accrue_citations(np.array([0.0]), np.random.default_rng(0))
        assert h.total == 0

    def test_bad_month_query(self):
        (h,) = accrue_citations(np.array([1.0]), np.random.default_rng(0))
        with pytest.raises(ValueError):
            h.total_at(-1)
