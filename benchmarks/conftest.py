"""Benchmark fixtures: one full-scale pipeline run shared by all benches.

Each benchmark times the regeneration of one paper artifact (table or
figure) from the already-built dataset — the analysis cost, which is what
varies between approaches — and writes the rendered artifact to
``benchmarks/output/<id>.txt`` so the run leaves the same tables/series
the paper reports.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.pipeline import RunConfig, run_pipeline
from repro.synth import WorldConfig

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def result():
    """The full-scale pipeline result (paper-sized population)."""
    return run_pipeline(RunConfig(world=WorldConfig(seed=7, scale=1.0)))


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(output_dir: Path, exp_id: str, text: str) -> None:
    (output_dir / f"{exp_id}.txt").write_text(text + "\n", encoding="utf-8")
