"""Site-generation ↔ scraping round-trip tests."""

import pytest

from repro.confmodel.roles import Role
from repro.harvest import (
    build_proceedings,
    from_dblp_xml,
    generate_site,
    scrape_site,
    to_dblp_xml,
)
from repro.harvest.proceedings import extract_emails


@pytest.fixture(scope="module")
def sc_site(small_world):
    return generate_site(small_world.registry, "SC", 2017)


@pytest.fixture(scope="module")
def sc_proceedings(small_world):
    return build_proceedings(small_world.registry, "SC", 2017)


@pytest.fixture(scope="module")
def harvested(sc_site, sc_proceedings):
    return scrape_site(sc_site, sc_proceedings)


class TestRoundTrip:
    def test_metadata(self, harvested, small_world):
        ed = small_world.registry.editions["SC-2017"]
        assert harvested.date == ed.date
        assert harvested.country == "US"
        assert harvested.accepted == ed.accepted
        assert harvested.submitted == ed.submitted
        assert harvested.review_policy == "double"
        assert harvested.acceptance_rate == pytest.approx(
            ed.accepted / ed.submitted
        )

    def test_diversity_policies(self, harvested):
        joined = " ".join(harvested.diversity_policies)
        assert "Chair" in joined and "Conduct" in joined

    def test_all_papers_recovered(self, harvested, small_world):
        truth = small_world.registry.papers_of("SC", 2017)
        assert len(harvested.papers) == len(truth)
        truth_by_id = {p.paper_id: p for p in truth}
        for hp in harvested.papers:
            tp = truth_by_id[hp.paper_id]
            names = [
                small_world.registry.people[a.person_id].full_name
                for a in tp.authorships
            ]
            assert list(hp.author_names) == names
            assert hp.citations_36mo == tp.citations_36mo
            assert hp.is_hpc_topic == tp.is_hpc

    def test_roles_recovered(self, harvested, small_world):
        reg = small_world.registry
        for css, role in [
            ("pc-member", Role.PC_MEMBER),
            ("keynote", Role.KEYNOTE),
            ("session-chair", Role.SESSION_CHAIR),
        ]:
            harvested_names = sorted(
                r.full_name for r in harvested.roles if r.role == css
            )
            truth_names = sorted(
                reg.people[r.person_id].full_name
                for r in reg.roles_of("SC", 2017, role)
            )
            assert harvested_names == truth_names

    def test_emails_aligned(self, harvested, small_world):
        reg = small_world.registry
        truth = {p.paper_id: p for p in reg.papers_of("SC", 2017)}
        for hp in harvested.papers:
            tp = truth[hp.paper_id]
            for name, email, a in zip(
                hp.author_names, hp.author_emails, tp.authorships
            ):
                assert email == reg.people[a.person_id].email

    def test_missing_proceedings_tolerated(self, sc_site):
        h = scrape_site(sc_site, None)
        assert all(p.citations_36mo is None for p in h.papers)
        assert all(e is None for p in h.papers for e in p.author_emails)


class TestMalformations:
    def test_extra_unknown_sections_ignored(self, sc_site, sc_proceedings):
        mangled = sc_site.index_html.replace(
            "<body>", "<body><div class='ad'>BUY NOW</div>"
        )
        import dataclasses

        site2 = dataclasses.replace(sc_site, index_html=mangled)
        h = scrape_site(site2, sc_proceedings)
        assert h.country == "US"

    def test_non_numeric_counts_become_none(self, sc_site):
        import dataclasses
        import re

        mangled = re.sub(
            r'(<p class="conf-accepted">)\d+(</p>)', r"\1TBD\2", sc_site.index_html
        )
        site2 = dataclasses.replace(sc_site, index_html=mangled)
        h = scrape_site(site2, None)
        assert h.accepted is None
        assert h.acceptance_rate is None

    def test_unknown_role_class_skipped(self, sc_site, sc_proceedings):
        import dataclasses

        extra = '<ul><li class="mascot">Conference Dog</li></ul>'
        site2 = dataclasses.replace(
            sc_site, committees_html=sc_site.committees_html.replace(
                "</body>", extra + "</body>"
            )
        )
        h = scrape_site(site2, sc_proceedings)
        from repro.pipeline.link import link_identities

        linked = link_identities([h])
        assert all(
            "Conference Dog" != r.full_name for r in linked.researchers.values()
        )


class TestDblp:
    def test_roundtrip(self, harvested):
        xml = to_dblp_xml("SC", 2017, harvested.papers)
        back = from_dblp_xml(xml)
        assert len(back) == len(harvested.papers)
        for a, b in zip(harvested.papers, back):
            assert a.paper_id == b.paper_id
            assert a.title == b.title
            assert a.author_names == b.author_names

    def test_dblp_has_no_emails(self, harvested):
        xml = to_dblp_xml("SC", 2017, harvested.papers)
        back = from_dblp_xml(xml)
        assert all(e is None for p in back for e in p.author_emails)


class TestEmails:
    def test_extract_emails(self):
        text = "Ann <ann@x.edu>\nBob no email\nCarl <carl.x@lab2.gov.de>"
        assert extract_emails(text) == ["ann@x.edu", "carl.x@lab2.gov.de"]
