"""Content-addressed artifact cache, persisted via the checkpoint store.

Each entry is one node materialization, keyed by the node's fingerprint
(world/config digest + node params + upstream digests — see
:mod:`repro.engine.fingerprint`).  :class:`~repro.pipeline.checkpoint.CheckpointStore`
provides the on-disk discipline the checkpoint layer already had:
atomic, fsynced writes and a ``meta.json`` fingerprint that refuses to
serve a directory written by an incompatible engine
(:class:`~repro.pipeline.checkpoint.CheckpointMismatch`) instead of
silently mixing formats.

Keys are content-addressed, so one cache directory serves any number of
distinct runs — different seeds, scales, policies — side by side; a
changed config simply misses and materializes new entries.

The cache is **self-healing**.  Every entry is stored as an envelope
``{key, digest, payload}`` where ``digest`` is SHA-256 over the pickled
payload, and every load verifies the envelope before serving it.  A
torn, bit-flipped, or foreign entry is moved to a ``quarantine/``
subdirectory — preserved for forensics, out of the cache's namespace —
and reported as a **miss** (``KeyError``), never an abort: the caller
simply recomputes and overwrites, which is how a damaged cache heals to
100% over a clean rerun.  Saves take a cross-process advisory lock
(``.lock``, ``fcntl.flock`` where available) so two runs sharing a
directory serialize their writes.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Iterator

from repro.engine.fingerprint import ENGINE_SCHEMA
from repro.obs.context import current as _obs
from repro.pipeline.checkpoint import CheckpointMismatch, CheckpointStore

try:  # advisory locking is POSIX-only; the cache degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["ArtifactCache", "CACHE_FORMAT", "QUARANTINE_DIR"]

# identifies the cache directory layout + pickle protocol discipline;
# bump on incompatible change so old directories are refused, not
# misread.  "entry" versions the per-entry envelope: v2 added the
# payload digest + quarantine lifecycle (schema stays ENGINE_SCHEMA —
# fingerprints did not change, only the storage wrapper did).
CACHE_FORMAT = {"format": "repro-engine-cache", "schema": ENGINE_SCHEMA, "entry": 2}

QUARANTINE_DIR = "quarantine"
_ENVELOPE_KEYS = {"key", "digest", "payload"}


class ArtifactCache:
    """Filesystem cache of node outputs, one pickle per materialization."""

    def __init__(self, root: str | Path) -> None:
        root_path = Path(root)
        # a populated directory without our meta.json is somebody else's
        # data — begin() would wipe it, so refuse instead
        if (
            root_path.is_dir()
            and any(root_path.iterdir())
            and not (root_path / CheckpointStore.META).exists()
        ):
            raise CheckpointMismatch(
                f"{root_path} exists, is not empty, and is not an engine "
                f"cache directory; refusing to adopt (or wipe) it"
            )
        self._store = CheckpointStore(root_path, dict(CACHE_FORMAT))
        # resume semantics on purpose: reuse a matching directory, raise
        # CheckpointMismatch on a foreign one, create a missing one
        self._store.begin(resume=True)

    @classmethod
    def if_exists(cls, root: str | Path) -> "ArtifactCache | None":
        """Open an existing cache, or return ``None`` without creating one.

        Read-only tooling (``repro cache stats|verify|gc``) must be able
        to report an empty cache without materializing the directory as
        a side effect.  A missing or empty path is simply "no cache";
        a populated foreign directory still raises
        :class:`~repro.pipeline.checkpoint.CheckpointMismatch` — absence
        is benign, misidentity is not.
        """
        root_path = Path(root)
        if not root_path.is_dir() or not any(root_path.iterdir()):
            return None
        return cls(root_path)

    @property
    def root(self) -> Path:
        return self._store.root

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    @staticmethod
    def _entry(node: str, key: str) -> str:
        return f"{node}-{key[:24]}"

    def entry_path(self, node: str, key: str) -> Path:
        """On-disk location of one entry (exists only after a save)."""
        return self._store.stage_path(self._entry(node, key))

    # --------------------------------------------------------------- locking

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Cross-process advisory lock serializing writes to this cache."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        fd = os.open(self.root / ".lock", os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # ------------------------------------------------------------ load/save

    def has(self, node: str, key: str) -> bool:
        return self._store.has_stage(self._entry(node, key))

    def load(self, node: str, key: str) -> dict[str, Any]:
        """Load one node's output dict; raises ``KeyError`` on a miss.

        A corrupt entry — torn write, flipped bits, foreign pickle — is
        quarantined and reported as a miss.  This method never raises
        anything but ``KeyError``: a damaged cache can cost recompute
        time, never a run.
        """
        entry = self._entry(node, key)
        if not self._store.has_stage(entry):
            raise KeyError(f"cache miss for node {node!r} key {key[:12]}…")
        try:
            envelope = self._store.load_stage(entry)
        except FileNotFoundError:
            # concurrent gc/quarantine won the race; a plain miss
            raise KeyError(f"cache miss for node {node!r} key {key[:12]}…")
        except Exception:
            # torn write or foreign bytes: unpickling the envelope failed
            self._quarantine(entry, node, "unreadable")
            raise KeyError(f"quarantined unreadable entry for node {node!r}")
        return self._verified_outputs(entry, node, key, envelope)

    def _verified_outputs(
        self, entry: str, node: str, key: str, envelope: Any
    ) -> dict[str, Any]:
        if not isinstance(envelope, dict) or not _ENVELOPE_KEYS <= set(envelope):
            self._quarantine(entry, node, "malformed-envelope")
            raise KeyError(f"quarantined malformed entry for node {node!r}")
        if envelope["key"] != key:
            # 24-hex-char prefix collision (astronomically unlikely): a
            # *well-formed* entry for a different key.  A miss — but not
            # corruption, so the other run's entry stays where it is.
            raise KeyError(f"cache entry for node {node!r} does not match key")
        payload = envelope["payload"]
        if (
            not isinstance(payload, bytes)
            or hashlib.sha256(payload).hexdigest() != envelope["digest"]
        ):
            self._quarantine(entry, node, "digest-mismatch")
            raise KeyError(f"quarantined corrupt entry for node {node!r}")
        try:
            return pickle.loads(payload)
        except Exception:
            self._quarantine(entry, node, "unpicklable-payload")
            raise KeyError(f"quarantined unpicklable entry for node {node!r}")

    def save(self, node: str, key: str, outputs: dict[str, Any]) -> None:
        payload = pickle.dumps(outputs)
        envelope = {
            "key": key,
            "digest": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        with self._locked():
            self._store.save_stage(self._entry(node, key), envelope)
        _obs().event("cache.store", node, key=key[:16])

    # ---------------------------------------------------------- quarantine

    def _quarantine(self, entry: str, node: str, reason: str) -> None:
        """Move one damaged entry aside; never raises."""
        src = self._store.stage_path(entry)
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(exist_ok=True)
            dst = qdir / src.name
            n = 0
            while dst.exists():
                n += 1
                dst = qdir / f"{src.name}.{n}"
            os.replace(src, dst)
        except OSError:
            # already moved by a concurrent process, or the directory is
            # read-only — either way the load still reports a miss
            return
        ctx = _obs()
        ctx.event("cache.quarantine", node, entry=entry, reason=reason)
        ctx.metrics.inc("engine.cache.quarantined")

    def quarantined(self) -> list[str]:
        """File names currently held in ``quarantine/`` (sorted)."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(p.name for p in self.quarantine_dir.iterdir() if p.is_file())

    def purge_quarantine(self) -> int:
        """Delete quarantined files; returns how many were removed."""
        removed = 0
        for name in self.quarantined():
            try:
                (self.quarantine_dir / name).unlink()
                removed += 1
            except FileNotFoundError:
                continue
        return removed

    # ------------------------------------------------------------ integrity

    def verify(self) -> dict[str, Any]:
        """Check every entry's envelope; quarantine the damaged ones.

        Returns ``{"checked", "ok", "quarantined": [(entry, reason)...]}``.
        Verification is the load-path check applied cache-wide: after
        ``verify()`` every surviving entry is servable.
        """
        checked = 0
        bad: list[tuple[str, str]] = []
        for entry in self.entries():
            checked += 1
            reason = self._entry_fault(entry)
            if reason is not None:
                self._quarantine(entry, entry.rsplit("-", 1)[0], reason)
                bad.append((entry, reason))
        return {"checked": checked, "ok": checked - len(bad), "quarantined": bad}

    def _entry_fault(self, entry: str) -> str | None:
        """The reason one entry is damaged, or ``None`` if servable."""
        try:
            envelope = self._store.load_stage(entry)
        except FileNotFoundError:
            return None  # vanished mid-scan: nothing left to quarantine
        except Exception:
            return "unreadable"
        if not isinstance(envelope, dict) or not _ENVELOPE_KEYS <= set(envelope):
            return "malformed-envelope"
        key = envelope["key"]
        if not isinstance(key, str) or not entry.endswith(key[:24]):
            return "key-mismatch"
        payload = envelope["payload"]
        if (
            not isinstance(payload, bytes)
            or hashlib.sha256(payload).hexdigest() != envelope["digest"]
        ):
            return "digest-mismatch"
        try:
            pickle.loads(payload)
        except Exception:
            return "unpicklable-payload"
        return None

    # ------------------------------------------------------------ accounting

    def entries(self) -> list[str]:
        """Names of all cached materializations (sorted, for reports)."""
        return sorted(p.stem.replace(".stage", "") for p in self.root.glob("*.stage.pkl"))

    def size_bytes(self) -> int:
        total = 0
        for p in self.root.glob("*.stage.pkl"):
            try:
                total += p.stat().st_size
            except FileNotFoundError:
                continue  # deleted by concurrent gc/quarantine mid-glob
        return total

    def stats(self) -> dict[str, int]:
        """Entry/byte counts for the cache and its quarantine."""
        q_bytes = 0
        for name in self.quarantined():
            try:
                q_bytes += (self.quarantine_dir / name).stat().st_size
            except FileNotFoundError:
                continue
        return {
            "entries": len(self.entries()),
            "size_bytes": self.size_bytes(),
            "quarantined": len(self.quarantined()),
            "quarantine_bytes": q_bytes,
        }

    def gc(
        self, max_bytes: int | None = None, max_entries: int | None = None
    ) -> list[str]:
        """Evict oldest entries until the cache fits the given bounds.

        Eviction order is ``(mtime, name)`` — oldest first, name-stable
        under equal timestamps so two processes agree on the victim
        list.  Returns the evicted entry names.
        """
        if max_bytes is None and max_entries is None:
            return []
        aged: list[tuple[float, str, Path, int]] = []
        for p in self.root.glob("*.stage.pkl"):
            try:
                st = p.stat()
            except FileNotFoundError:
                continue
            aged.append((st.st_mtime, p.name, p, st.st_size))
        aged.sort()
        evicted: list[str] = []
        count = len(aged)
        total = sum(a[3] for a in aged)
        for _, _, path, size in aged:
            over_bytes = max_bytes is not None and total > max_bytes
            over_count = max_entries is not None and count > max_entries
            if not over_bytes and not over_count:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            total -= size
            count -= 1
            evicted.append(path.stem.replace(".stage", ""))
        return evicted
