"""Serialize observability output: ``trace.json`` and ``metrics.json``.

``trace.json`` is Chrome trace-event format (loadable in
``chrome://tracing`` / Perfetto).  ``metrics.json`` is the determinism
artifact: everything outside its ``"timing"`` section is byte-identical
across two runs with the same seed (sorted keys, event counts only), so
CI can diff it like any other reproducibility output.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer, chrome_trace

__all__ = ["write_trace", "write_metrics", "metrics_payload"]


def write_trace(tracer: Tracer, path: str | Path, label: str = "repro") -> Path:
    """Write the Chrome trace-event document; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(
        json.dumps(chrome_trace(tracer, label), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return p


def metrics_payload(
    metrics: MetricsRegistry,
    timing: dict[str, float] | None = None,
    meta: dict | None = None,
) -> dict:
    """The ``metrics.json`` document: deterministic body + timing section.

    ``timing`` (stage wall-times, span durations) is the only
    non-deterministic content and lives under its own key so consumers —
    and the determinism tests — can exclude it wholesale.
    """
    return {
        "meta": dict(sorted((meta or {}).items())),
        "metrics": metrics.to_dict(exclude_timings=True),
        "timing": {
            **{k: round(v, 6) for k, v in sorted((timing or {}).items())},
            **{
                k: metrics.gauges[k]
                for k in sorted(metrics.gauges)
                if k.startswith("time.")
            },
        },
    }


def write_metrics(
    metrics: MetricsRegistry,
    path: str | Path,
    timing: dict[str, float] | None = None,
    meta: dict | None = None,
) -> Path:
    """Write ``metrics.json``; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(
        json.dumps(metrics_payload(metrics, timing, meta), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return p
