"""Malformation matrix: the scraper survives every corruption we inject.

Covers the two historical scraper bugs (the ``Name <addr`` header crash
and the zero-acceptance truthiness bug) plus a fuzz sweep of
:func:`repro.faults.corrupt.corrupt_edition` over real generated sites,
and the pipeline-level guarantee that every lost edition is accounted
for in the ingest report.
"""

import pytest

from repro.faults import FaultConfig
from repro.faults.corrupt import CORRUPTION_TAGS, corrupt_edition
from repro.harvest.html import el, render
from repro.harvest.proceedings import ProceedingsRecord, build_proceedings
from repro.harvest.scrape import HarvestedConference, scrape_site
from repro.harvest.sitegen import ConferenceSite, generate_site
from repro.pipeline.ingest import ingest_world_resilient
from repro.util.rng import spawn_rng

TRANSIENT_ONLY = (1.0, 0.0, 0.0, 0.0)


def _single_paper_site(papers_html: str) -> ConferenceSite:
    return ConferenceSite(
        conference="CONF",
        year=2017,
        index_html="<html><body></body></html>",
        committees_html="<html><body></body></html>",
        program_html="<html><body></body></html>",
        papers_html=papers_html,
    )


def _paper_page(*author_names: str) -> str:
    paper = el(
        "div",
        el("p", "p1", cls="paper-id"),
        el("p", "A Study", cls="paper-title"),
        el("ul", *[el("li", n, cls="paper-author") for n in author_names]),
        cls="paper",
    )
    return render(el("html", el("body", paper)))


def _record(header: str, *author_names: str) -> ProceedingsRecord:
    return ProceedingsRecord(
        paper_id="p1",
        conference="CONF",
        year=2017,
        title="A Study",
        author_names=tuple(author_names),
        fulltext_header=header,
        citations_36mo=3,
        is_hpc_topic=True,
    )


class TestEmailHeaderParsing:
    """Satellite: ``Name <addr`` without ``>`` used to crash the scraper."""

    def test_unclosed_bracket_yields_no_email(self):
        site = _single_paper_site(_paper_page("Alice Smith"))
        rec = _record("A Study\n\nAlice Smith <alice@mit.edu", "Alice Smith")
        conf = scrape_site(site, [rec])  # must not raise
        assert conf.papers[0].author_emails == (None,)

    def test_inverted_brackets_yield_no_email(self):
        site = _single_paper_site(_paper_page("Alice Smith"))
        rec = _record("A Study\n\nAlice Smith >alice@mit.edu<", "Alice Smith")
        conf = scrape_site(site, [rec])
        assert conf.papers[0].author_emails == (None,)

    def test_well_formed_line_still_extracts(self):
        site = _single_paper_site(_paper_page("Alice Smith", "Bob Jones"))
        rec = _record(
            "A Study\n\nAlice Smith <alice@mit.edu>\nBob Jones <bob@cmu.edu",
            "Alice Smith",
            "Bob Jones",
        )
        conf = scrape_site(site, [rec])
        # the broken line degrades alone; the good one still parses
        assert conf.papers[0].author_emails == ("alice@mit.edu", None)


class TestAcceptanceRate:
    """Satellite: accepted=0 is a real rate of 0.0, not missing data."""

    def test_zero_accepted_is_zero_not_none(self):
        conf = HarvestedConference("C", 2017, accepted=0, submitted=100)
        assert conf.acceptance_rate == 0.0

    def test_missing_counts_are_none(self):
        assert HarvestedConference("C", 2017, accepted=None, submitted=100).acceptance_rate is None
        assert HarvestedConference("C", 2017, accepted=10, submitted=None).acceptance_rate is None

    def test_zero_submitted_is_none_not_crash(self):
        conf = HarvestedConference("C", 2017, accepted=0, submitted=0)
        assert conf.acceptance_rate is None

    def test_normal_rate(self):
        conf = HarvestedConference("C", 2017, accepted=25, submitted=100)
        assert conf.acceptance_rate == pytest.approx(0.25)


@pytest.mark.faults
class TestMalformationMatrix:
    """Fuzz sweep: scrape_site never raises on any corrupted edition."""

    def test_every_corruption_on_every_edition(self, small_world):
        editions = [
            e for e in small_world.registry.editions.values() if e.year == 2017
        ]
        assert editions, "small_world must have 2017 editions"
        seen_tags = set()
        for edition in editions:
            site = generate_site(small_world.registry, edition.name, edition.year)
            proceedings = build_proceedings(
                small_world.registry, edition.name, edition.year
            )
            for trial in range(8):
                rng = spawn_rng(99, "fuzz", edition.name, trial)
                bad_site, bad_proc, tags = corrupt_edition(
                    site, proceedings, rng, max_ops=3
                )
                seen_tags.update(tags)
                conf = scrape_site(bad_site, bad_proc)  # must not raise
                assert conf.conference == edition.name
                assert conf.year == edition.year
        # the sweep actually exercised the corruption matrix
        assert len(seen_tags) >= len(CORRUPTION_TAGS) // 2

    def test_corruption_is_deterministic(self, small_world):
        edition = next(
            e for e in small_world.registry.editions.values() if e.year == 2017
        )
        site = generate_site(small_world.registry, edition.name, edition.year)
        proceedings = build_proceedings(
            small_world.registry, edition.name, edition.year
        )
        a = corrupt_edition(site, proceedings, spawn_rng(5, "det"))
        b = corrupt_edition(site, proceedings, spawn_rng(5, "det"))
        assert a == b


@pytest.mark.faults
class TestIngestAccounting:
    """Every edition is either harvested or recorded as a loss."""

    @pytest.mark.parametrize("rate", [0.3, 0.7, 1.0])
    def test_editions_all_accounted(self, small_world, rate):
        report = ingest_world_resilient(
            small_world,
            faults=FaultConfig(rate=rate, seed=3, weights=TRANSIENT_ONLY),
        )
        dropped = {r.key for r in report.losses if r.stage == "harvest"}
        assert len(report.conferences) + len(dropped) == report.total_editions
        harvested = {f"{c.conference}-{c.year}" for c in report.conferences}
        assert not harvested & dropped

    def test_malformed_editions_harvest_but_are_recorded(self, small_world):
        # malformed-only: no edition is ever dropped, but corruption is logged
        report = ingest_world_resilient(
            small_world,
            faults=FaultConfig(rate=1.0, seed=3, weights=(0.0, 0.0, 0.0, 1.0)),
        )
        assert len(report.conferences) == report.total_editions
        assert report.losses
        assert all(r.reason.startswith("malformed:") for r in report.losses)
