"""Cache-key derivation: deterministic, canonical, change-sensitive."""

import pytest

from repro.engine.fingerprint import canonical, fingerprint, world_fingerprint
from repro.faults.plan import FaultConfig
from repro.synth import WorldConfig, build_world

pytestmark = pytest.mark.engine


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(None) is None
        assert canonical(True) is True
        assert canonical(3) == 3
        assert canonical("x") == "x"

    def test_float_uses_exact_repr(self):
        assert canonical(0.1) == {"__float__": "0.1"}
        assert canonical(0.1) != canonical(0.1000000001)

    def test_dict_key_order_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_set_order_irrelevant(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_dataclass_by_fields(self):
        a = WorldConfig(seed=1, scale=0.5)
        b = WorldConfig(seed=1, scale=0.5)
        assert canonical(a) == canonical(b)
        assert canonical(a) != canonical(WorldConfig(seed=2, scale=0.5))


class TestFingerprint:
    def test_stable_across_calls(self):
        cfg = WorldConfig(seed=7)
        assert fingerprint("node", cfg) == fingerprint("node", cfg)

    def test_sensitive_to_any_field(self):
        base = fingerprint(WorldConfig(seed=7, scale=1.0))
        assert fingerprint(WorldConfig(seed=8, scale=1.0)) != base
        assert fingerprint(WorldConfig(seed=7, scale=0.5)) != base
        assert fingerprint(WorldConfig(seed=7, email_rate=0.5)) != base

    def test_nested_configs(self):
        a = fingerprint(FaultConfig(rate=0.1, seed=1))
        b = fingerprint(FaultConfig(rate=0.1, seed=2))
        assert a != b

    def test_is_hex_sha256(self):
        fp = fingerprint("x")
        assert len(fp) == 64
        int(fp, 16)  # parses as hex


class TestWorldFingerprint:
    def test_config_vs_config(self):
        assert world_fingerprint(WorldConfig(seed=1)) == world_fingerprint(
            WorldConfig(seed=1)
        )
        assert world_fingerprint(WorldConfig(seed=1)) != world_fingerprint(
            WorldConfig(seed=2)
        )

    def test_built_world_includes_edition_roster(self):
        from repro.universe import systems_universe

        cfg = WorldConfig(seed=3, scale=0.1, include_timeline=False)
        eight = build_world(cfg, targets=systems_universe(8))
        twelve = build_world(cfg, targets=systems_universe(12))
        # same config, different conference targets -> different digest
        assert world_fingerprint(eight) != world_fingerprint(twelve)
        # rebuilt identically -> identical digest
        again = build_world(cfg, targets=systems_universe(8))
        assert world_fingerprint(eight) == world_fingerprint(again)
