"""Tests for the cohort forecast model."""

import pytest

from repro.forecast import (
    CohortModel,
    CohortRates,
    CohortState,
    SCENARIOS,
    project_scenario,
    years_to_share,
)

_BANDS = {"novice": 0.4, "mid-career": 0.3, "experienced": 0.3}
_NEUTRAL = CohortRates(
    attrition={"novice": 0.1, "mid-career": 0.05, "experienced": 0.08},
    progression={"novice": 0.2, "mid-career": 0.1},
)


def neutral_model(entry_share: float) -> CohortModel:
    return CohortModel(
        rates={"F": _NEUTRAL, "M": _NEUTRAL},
        entry_size=100.0,
        entry_female_share=entry_share,
    )


class TestCohortMechanics:
    def test_rates_validation(self):
        with pytest.raises(ValueError):
            CohortRates(attrition={"novice": 1.5, "mid-career": 0, "experienced": 0},
                        progression={"novice": 0, "mid-career": 0})
        with pytest.raises(ValueError):
            CohortRates(attrition={"novice": 0.1}, progression={"novice": 0.1})

    def test_model_validation(self):
        with pytest.raises(ValueError):
            CohortModel({"F": _NEUTRAL}, 10, 0.5)
        with pytest.raises(ValueError):
            CohortModel({"F": _NEUTRAL, "M": _NEUTRAL}, -1, 0.5)
        with pytest.raises(ValueError):
            CohortModel({"F": _NEUTRAL, "M": _NEUTRAL}, 10, 1.5)

    def test_state_shares(self):
        s = CohortState.from_shares(1000, 0.1, {"F": _BANDS, "M": _BANDS})
        assert s.total() == pytest.approx(1000)
        assert s.female_share() == pytest.approx(0.1)
        assert s.band_total("novice") == pytest.approx(400)

    def test_step_conserves_under_no_flows(self):
        zero = CohortRates(
            attrition={b: 0.0 for b in _BANDS},
            progression={"novice": 0.0, "mid-career": 0.0},
        )
        m = CohortModel({"F": zero, "M": zero}, entry_size=0.0, entry_female_share=0.5)
        s0 = CohortState.from_shares(500, 0.2, {"F": _BANDS, "M": _BANDS})
        s1 = m.step(s0)
        assert s1.total() == pytest.approx(500)
        assert s1.female_share() == pytest.approx(0.2)

    def test_steady_state_matches_entry_share(self):
        """With gender-neutral flows, the population converges to the
        entry mix — the model's key invariant."""
        m = neutral_model(entry_share=0.37)
        s = CohortState.from_shares(1000, 0.05, {"F": _BANDS, "M": _BANDS})
        for _ in range(400):
            s = m.step(s)
        assert s.female_share() == pytest.approx(0.37, abs=0.005)

    def test_progression_moves_people_up(self):
        m = neutral_model(0.5)
        s = CohortState.from_shares(1000, 0.5, {"F": _BANDS, "M": _BANDS})
        s40 = m.project(s, 40)[-1]
        assert s40.band_total("experienced") > 0

    def test_project_length(self):
        m = neutral_model(0.5)
        s = CohortState.from_shares(100, 0.5, {"F": _BANDS, "M": _BANDS})
        assert len(m.project(s, 10)) == 11
        with pytest.raises(ValueError):
            m.project(s, -1)


class TestScenarios:
    def test_all_scenarios_project(self):
        for name in SCENARIOS:
            p = project_scenario(name, years=30)
            assert len(p.shares) == 31
            assert all(0 <= s <= 1 for s in p.shares)

    def test_status_quo_stays_low(self):
        p = project_scenario("status_quo", years=50)
        assert p.shares[-1] < 0.15

    def test_parity_entry_rises(self):
        p = project_scenario("parity_entry", years=50)
        assert p.shares[-1] > 0.35
        assert years_to_share(p, 0.20) is not None

    def test_combined_fastest(self):
        pe = project_scenario("parity_entry", years=50)
        cb = project_scenario("combined", years=50)
        assert cb.shares[-1] >= pe.shares[-1]

    def test_retention_fix_alone_insufficient(self):
        """Equalizing attrition without changing the entry mix cannot
        approach parity — the pipeline argument in quantitative form."""
        p = project_scenario("retention_fix", years=60)
        assert p.shares[-1] < 0.15

    def test_years_to_share_none_when_unreached(self):
        p = project_scenario("status_quo", years=20)
        assert years_to_share(p, 0.5) is None

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            project_scenario("utopia")
