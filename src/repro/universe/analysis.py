"""Cross-subfield representation analysis over the universe."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq, women_share
from repro.calibration.targets import ConferenceTargets
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result, chi2_contingency
from repro.stats.proportions import Proportion, proportion_diff

__all__ = ["SubfieldRow", "UniverseReport", "universe_report"]


@dataclass(frozen=True)
class SubfieldRow:
    """One subfield's author representation."""

    field: str
    conferences: int
    authors: Proportion
    vs_hpc: Chi2Result | None    # contrast against the HPC subfield


@dataclass(frozen=True)
class UniverseReport:
    """FAR by systems subfield (the §6 expansion)."""

    rows: tuple[SubfieldRow, ...]     # sorted by FAR descending
    overall: Proportion
    heterogeneity: Chi2Result         # K×2 test that subfields differ

    def field(self, name: str) -> SubfieldRow:
        for r in self.rows:
            if r.field == name:
                return r
        raise KeyError(f"no subfield {name!r}")


def universe_report(
    ds: AnalysisDataset, targets: list[ConferenceTargets]
) -> UniverseReport:
    """Compute per-subfield author representation.

    ``targets`` supplies the conference→subfield mapping (the dataset
    itself only knows conference names, as a real pipeline would).
    """
    field_of = {t.name: t.field for t in targets}
    positions = ds.author_positions
    fields = sorted({t.field for t in targets})

    shares: dict[str, Proportion] = {}
    conf_counts: dict[str, int] = {}
    for f in fields:
        confs = {t.name for t in targets if t.field == f}
        sub = positions.filter(
            lambda t: np.array([c in confs for c in t["conference"]], dtype=bool)
        )
        shares[f] = women_share(sub)
        conf_counts[f] = len(confs)

    hpc = shares.get("HPC")
    rows = []
    for f in fields:
        vs = (
            proportion_diff(shares[f], hpc)
            if hpc is not None and f != "HPC" and shares[f].n and hpc.n
            else None
        )
        rows.append(
            SubfieldRow(
                field=f,
                conferences=conf_counts[f],
                authors=shares[f],
                vs_hpc=vs,
            )
        )
    rows.sort(key=lambda r: -(r.authors.value if r.authors.n else 0.0))

    matrix = np.array(
        [[shares[f].hits, shares[f].n - shares[f].hits] for f in fields],
        dtype=float,
    )
    het = (
        chi2_contingency(matrix)
        if (matrix.sum(axis=1) > 0).all()
        else Chi2Result(float("nan"), len(fields) - 1, float("nan"), ())
    )
    return UniverseReport(
        rows=tuple(rows),
        overall=women_share(positions),
        heterogeneity=het,
    )
