"""Subfield profiles and the 56-conference generator.

Per-subfield female-author rates follow the published literature the
paper cites (Cohoon'11, Wang'21, Mattauch'20): systems subfields sit
well below the CS-wide 20–30%, with HPC/architecture lowest and
measurement/databases somewhat higher.  The profiles are calibration
inputs for the synthetic universe, documented here so the extension's
assumptions are inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.targets import ConferenceTargets
from repro.util.rng import spawn_rng

__all__ = ["SubfieldProfile", "SUBFIELD_PROFILES", "systems_universe", "edition_targets"]


@dataclass(frozen=True)
class SubfieldProfile:
    """Generation profile for one systems subfield."""

    name: str
    conferences: int          # how many conferences in the universe
    far_mean: float           # mean female-author rate
    far_spread: float         # conference-to-conference spread (uniform ±)
    papers_mean: int          # accepted papers per conference (mean)
    acceptance_mean: float


SUBFIELD_PROFILES: tuple[SubfieldProfile, ...] = (
    SubfieldProfile("HPC", 9, 0.100, 0.020, 58, 0.27),
    SubfieldProfile("Architecture", 7, 0.085, 0.020, 55, 0.20),
    SubfieldProfile("OS", 6, 0.105, 0.025, 40, 0.18),
    SubfieldProfile("Networking", 8, 0.120, 0.025, 60, 0.19),
    SubfieldProfile("Storage", 5, 0.110, 0.025, 35, 0.22),
    SubfieldProfile("Security", 8, 0.125, 0.025, 70, 0.17),
    SubfieldProfile("Databases", 6, 0.150, 0.030, 65, 0.21),
    SubfieldProfile("Measurement", 4, 0.160, 0.030, 35, 0.24),
    SubfieldProfile("Cloud", 3, 0.115, 0.025, 45, 0.25),
)

_HOSTS = ("US", "US", "US", "DE", "ES", "UK", "CN", "JP", "CA", "FR", "IN", "TH")


def edition_targets(seed: int, venues: int, years: tuple[int, ...]) -> list[ConferenceTargets]:
    """Generate per-edition targets for a sharded multi-year universe.

    Every (venue, year) cell draws from its own named rng stream
    (``spawn_rng(seed, "edition", k, year)``) so a single edition's
    targets are a pure function of ``(seed, venue index, year)`` —
    independent of how many other venues or years exist.  That purity is
    what lets :class:`repro.synth.shards.ShardPlan` cache and rebuild one
    shard without touching the rest of the universe.

    Venues cycle through the subfield profiles; names carry a ``V``
    marker (e.g. ``HPCV01``) so they can never collide with the
    :func:`systems_universe` catalog.
    """
    if venues <= 0:
        raise ValueError("venues must be positive")
    if not years:
        raise ValueError("years must be non-empty")
    targets: list[ConferenceTargets] = []
    for k in range(venues):
        profile = SUBFIELD_PROFILES[k % len(SUBFIELD_PROFILES)]
        name = f"{profile.name[:4].upper()}V{k + 1:02d}"
        for year in years:
            rng = spawn_rng(seed, "edition", k, year)
            papers = max(10, int(round(profile.papers_mean * (0.7 + 0.6 * rng.random()))))
            authors_per_paper = 3.6 + 0.8 * rng.random()
            unique_authors = int(round(papers * authors_per_paper))
            positions = int(round(unique_authors * 1.06))
            far = float(
                np.clip(
                    profile.far_mean + profile.far_spread * (2 * rng.random() - 1),
                    0.02,
                    0.40,
                )
            )
            pc_size = max(20, int(round(papers * 2.2)))
            pc_far = float(np.clip(far * 1.8, 0.05, 0.45))
            month = int(rng.integers(1, 13))
            targets.append(
                ConferenceTargets(
                    name=name,
                    date=f"{year}-{month:02d}-{int(rng.integers(1, 28)):02d}",
                    papers=papers,
                    unique_authors=unique_authors,
                    acceptance_rate=float(
                        np.clip(profile.acceptance_mean * (0.8 + 0.4 * rng.random()), 0.08, 0.5)
                    ),
                    country=str(_HOSTS[int(rng.integers(len(_HOSTS)))]),
                    author_positions=positions,
                    far=far,
                    lead_far=float(np.clip(far * (0.9 + 0.4 * rng.random()), 0.02, 0.5)),
                    last_far=float(np.clip(far * (0.7 + 0.4 * rng.random()), 0.02, 0.5)),
                    pc_size=pc_size,
                    pc_women=int(round(pc_size * pc_far)),
                    pc_chairs=int(rng.integers(2, 5)),
                    pc_chair_women=int(rng.random() < 2.2 * far),
                    keynotes=int(rng.integers(2, 5)),
                    keynote_women=int(rng.random() < 2.0 * far),
                    panelists=int(rng.integers(0, 13)),
                    panelist_women=int(rng.random() < 2.0 * far),
                    session_chairs=max(4, papers // 5),
                    session_chair_women=int(round(max(4, papers // 5) * far * 1.2)),
                    double_blind=bool(rng.random() < 0.3),
                    diversity_chair=bool(rng.random() < 0.15),
                    code_of_conduct=bool(rng.random() < 0.4),
                    childcare=bool(rng.random() < 0.05),
                    demographic_reporting=bool(rng.random() < 0.1),
                    field=profile.name,
                )
            )
    return targets


def systems_universe(seed: int = 56) -> list[ConferenceTargets]:
    """Generate the 56-conference systems universe.

    Returns one :class:`ConferenceTargets` per conference with subfield-
    profiled sizes and rates; total conference count is the sum of the
    profiles' counts (56, matching §6).
    """
    rng = spawn_rng(seed, "universe")
    targets: list[ConferenceTargets] = []
    month = 1
    for profile in SUBFIELD_PROFILES:
        for k in range(profile.conferences):
            papers = max(10, int(round(profile.papers_mean * (0.7 + 0.6 * rng.random()))))
            authors_per_paper = 3.6 + 0.8 * rng.random()
            unique_authors = int(round(papers * authors_per_paper))
            positions = int(round(unique_authors * 1.06))
            far = float(
                np.clip(
                    profile.far_mean
                    + profile.far_spread * (2 * rng.random() - 1),
                    0.02,
                    0.40,
                )
            )
            pc_size = max(20, int(round(papers * 2.2)))
            pc_far = float(np.clip(far * 1.8, 0.05, 0.45))
            month = month % 12 + 1
            targets.append(
                ConferenceTargets(
                    name=f"{profile.name[:4].upper()}{k+1}",
                    date=f"2017-{month:02d}-{int(rng.integers(1, 28)):02d}",
                    papers=papers,
                    unique_authors=unique_authors,
                    acceptance_rate=float(
                        np.clip(profile.acceptance_mean * (0.8 + 0.4 * rng.random()), 0.08, 0.5)
                    ),
                    country=str(_HOSTS[int(rng.integers(len(_HOSTS)))]),
                    author_positions=positions,
                    far=far,
                    lead_far=float(np.clip(far * (0.9 + 0.4 * rng.random()), 0.02, 0.5)),
                    last_far=float(np.clip(far * (0.7 + 0.4 * rng.random()), 0.02, 0.5)),
                    pc_size=pc_size,
                    pc_women=int(round(pc_size * pc_far)),
                    pc_chairs=int(rng.integers(2, 5)),
                    pc_chair_women=int(rng.random() < 2.2 * far),
                    keynotes=int(rng.integers(2, 5)),
                    keynote_women=int(rng.random() < 2.0 * far),
                    panelists=int(rng.integers(0, 13)),
                    panelist_women=int(rng.random() < 2.0 * far),
                    session_chairs=max(4, papers // 5),
                    session_chair_women=int(round(max(4, papers // 5) * far * 1.2)),
                    double_blind=bool(rng.random() < 0.3),
                    diversity_chair=bool(rng.random() < 0.15),
                    code_of_conduct=bool(rng.random() < 0.4),
                    childcare=bool(rng.random() < 0.05),
                    demographic_reporting=bool(rng.random() < 0.1),
                    field=profile.name,
                )
            )
    return targets
