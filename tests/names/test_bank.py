"""Tests for the name banks."""

import numpy as np
import pytest

from repro.names import NameBank, default_bank


@pytest.fixture(scope="module")
def bank():
    return default_bank()


class TestSampling:
    def test_gender_conditioning(self, bank):
        rng = np.random.default_rng(0)
        # women draw from female-weighted names: average female_share high
        shares = [
            bank.lookup(bank.sample_forename("F", "western", rng)).female_share
            for _ in range(200)
        ]
        assert np.mean(shares) > 0.7
        shares_m = [
            bank.lookup(bank.sample_forename("M", "western", rng)).female_share
            for _ in range(200)
        ]
        assert np.mean(shares_m) < 0.3

    def test_east_asian_more_ambiguous(self, bank):
        rng = np.random.default_rng(1)
        def mean_ambiguity(cluster):
            vals = []
            for _ in range(300):
                g = "F" if rng.random() < 0.1 else "M"
                e = bank.lookup(bank.sample_forename(g, cluster, rng))
                vals.append(min(e.female_share, 1 - e.female_share))
            return np.mean(vals)
        assert mean_ambiguity("east_asian") > mean_ambiguity("western")

    def test_unknown_cluster(self, bank):
        with pytest.raises(KeyError):
            bank.sample_forename("F", "klingon", np.random.default_rng(0))

    def test_bad_gender(self, bank):
        with pytest.raises(ValueError):
            bank.sample_forename("X", "western", np.random.default_rng(0))

    def test_full_name_has_two_parts(self, bank):
        name = bank.sample_full_name("F", "DE", np.random.default_rng(2))
        assert len(name.split()) >= 2

    def test_confident_forename_extreme_share(self, bank):
        rng = np.random.default_rng(3)
        for _ in range(50):
            f = bank.sample_confident_forename("F", "western", rng)
            assert bank.lookup(f).female_share >= 0.92
            m = bank.sample_confident_forename("M", "east_asian", rng)
            assert bank.lookup(m).female_share <= 0.08

    def test_ambiguous_forename_mid_share(self, bank):
        rng = np.random.default_rng(4)
        for _ in range(50):
            f = bank.sample_ambiguous_forename("F", "east_asian", rng)
            share = bank.lookup(f).female_share
            assert 0.2 < share < 0.8


class TestLookup:
    def test_case_insensitive(self, bank):
        assert bank.lookup("mary") is not None
        assert bank.lookup("MARY").name == "Mary"

    def test_unknown_name(self, bank):
        assert bank.lookup("Zzyzx") is None

    def test_true_female_share(self, bank):
        assert bank.true_female_share("Mary") > 0.9
        assert bank.true_female_share("James") < 0.1
        assert bank.true_female_share("NoSuchName") is None

    def test_default_bank_cached(self):
        assert default_bank() is default_bank()
