"""Tests for the diversity-policy analysis."""

import pytest

from repro.analysis.policies import policy_report


@pytest.fixture(scope="module")
def report(small_result):
    return policy_report(small_result.dataset)


class TestPolicyReport:
    def test_policy_confs_are_flagships(self, report):
        assert set(report.policy_confs) == {"SC", "ISC"}

    def test_policy_confs_below_average(self, report):
        """§3.4's paradox: the diversity-policy conferences have the
        LOWEST author FAR in the set."""
        assert report.policy_confs_below_average
        assert report.far_policy.value < report.far_no_policy.value

    def test_correlation_weak(self, report):
        """§3.2: PC women share and author FAR 'appear to be unrelated' —
        the generator encodes no linkage, so |r| should be modest."""
        assert abs(report.pc_vs_author_correlation.r) < 0.75
        assert not report.pc_vs_author_correlation.significant(0.01)

    def test_per_conference_pairs(self, report):
        assert len(report.per_conference) == 9
        for far, pc_share in report.per_conference.values():
            assert 0 <= far <= 1 and 0 <= pc_share <= 1

    def test_full_scale_policy_gap(self, full_result):
        rep = policy_report(full_result.dataset)
        # SC+ISC pooled equals the double-blind pool here (same two confs):
        assert rep.far_policy.pct == pytest.approx(7.6, abs=1.5)
