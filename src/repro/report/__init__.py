"""Regeneration of every table and figure in the paper.

- :mod:`repro.report.tables`      — Table 1, Table 2, Table 3.
- :mod:`repro.report.figures`     — Figures 1–8 (data series + ASCII).
- :mod:`repro.report.compare`     — paper-vs-measured comparison rows.
- :mod:`repro.report.experiments` — the experiment registry keyed by
  DESIGN.md ids (T1, F1, S3.1, ... SENS), used by the benchmark harness
  and by ``examples/regenerate_paper.py``.
"""

from repro.report.tables import build_table1, build_table2, build_table3
from repro.report.figures import (
    build_fig1,
    build_fig2,
    build_fig3,
    build_fig4,
    build_fig5,
    build_fig6,
    build_fig7,
    build_fig8,
)
from repro.report.compare import ComparisonRow, compare_headlines
from repro.report.experiments import EXPERIMENTS, run_experiment
from repro.report.export import export_artifact
from repro.report.textreport import full_report
from repro.report.degraded import render_degraded
from repro.report.integrity import render_integrity
from repro.report.stability import stability_report

__all__ = [
    "build_table1",
    "build_table2",
    "build_table3",
    "build_fig1",
    "build_fig2",
    "build_fig3",
    "build_fig4",
    "build_fig5",
    "build_fig6",
    "build_fig7",
    "build_fig8",
    "ComparisonRow",
    "compare_headlines",
    "EXPERIMENTS",
    "run_experiment",
    "export_artifact",
    "full_report",
    "render_degraded",
    "render_integrity",
    "stability_report",
]
