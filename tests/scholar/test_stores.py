"""Tests for the GS/S2 stores and profile linking."""

import pytest

from repro.scholar import (
    GoogleScholarStore,
    GSProfile,
    S2Record,
    SemanticScholarStore,
    link_profiles,
)


def gs(pid, name, pubs=10):
    return GSProfile(pid, name, "University of X", pubs, 5, 3, 100)


class TestGoogleScholarStore:
    def test_add_and_get(self):
        store = GoogleScholarStore()
        store.add(gs("g1", "Ann Smith"))
        assert store.get("g1").display_name == "Ann Smith"
        assert store.get("nope") is None

    def test_duplicate_id_rejected(self):
        store = GoogleScholarStore()
        store.add(gs("g1", "Ann Smith"))
        with pytest.raises(ValueError):
            store.add(gs("g1", "Other"))

    def test_search_accent_insensitive(self):
        store = GoogleScholarStore()
        store.add(gs("g1", "Jürgen Müller"))
        assert len(store.search("jurgen muller")) == 1

    def test_unique_match_requires_singleton(self):
        store = GoogleScholarStore()
        store.add(gs("g1", "Wei Zhang"))
        store.add(gs("g2", "Wei Zhang"))
        assert store.unique_match("Wei Zhang") is None
        store.add(gs("g3", "Rare Name"))
        assert store.unique_match("Rare Name").profile_id == "g3"

    def test_len_iter(self):
        store = GoogleScholarStore()
        store.add(gs("g1", "A B"))
        store.add(gs("g2", "C D"))
        assert len(store) == 2
        assert {p.profile_id for p in store} == {"g1", "g2"}


class TestSemanticScholarStore:
    def test_put_get(self):
        s2 = SemanticScholarStore()
        s2.put("p1", S2Record("s1", "Ann Smith", 42))
        assert s2.publications_of("p1") == 42
        assert s2.get("nope") is None
        assert "p1" in s2 and len(s2) == 1

    def test_search_by_name(self):
        s2 = SemanticScholarStore()
        s2.put("p1", S2Record("s1", "Ann Smith", 42))
        s2.put("p2", S2Record("s2", "Ann Smith", 7))
        hits = s2.search_name("ann smith")
        assert {h.publications for h in hits} == {42, 7}


class TestLinking:
    def test_link_outcomes(self):
        store = GoogleScholarStore()
        store.add(gs("g1", "Unique Person"))
        store.add(gs("g2", "Dup Name"))
        store.add(gs("g3", "Dup Name"))
        res = link_profiles(
            [("p1", "Unique Person"), ("p2", "Dup Name"), ("p3", "Missing Person")],
            store,
        )
        assert res.links["p1"].profile_id == "g1"
        assert res.ambiguous == ["p2"]
        assert res.missing == ["p3"]
        assert res.coverage == pytest.approx(1 / 3)
