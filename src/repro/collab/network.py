"""Coauthorship graph construction."""

from __future__ import annotations

import networkx as nx

from repro.pipeline.dataset import AnalysisDataset

__all__ = ["build_coauthorship_graph"]


def build_coauthorship_graph(ds: AnalysisDataset) -> nx.Graph:
    """Build the researcher coauthorship graph from an analysis dataset.

    Nodes are researchers with ``gender`` ('F'/'M'/None), ``country``,
    and ``sector`` attributes; an edge connects two researchers who share
    at least one paper, weighted by the number of shared papers.  Nodes
    include solo authors (degree 0).
    """
    g = nx.Graph()
    r = ds.researchers
    for rid, gender, country, sector, is_author in zip(
        r["researcher_id"], r["gender"], r["country"], r["sector"], r["is_author"]
    ):
        if bool(is_author):
            g.add_node(rid, gender=gender, country=country, sector=sector)

    # group author positions by paper
    by_paper: dict[str, list[str]] = {}
    pos = ds.author_positions
    for pid, rid in zip(pos["paper_id"], pos["researcher_id"]):
        by_paper.setdefault(pid, []).append(rid)

    for authors in by_paper.values():
        for i in range(len(authors)):
            for j in range(i + 1, len(authors)):
                a, b = authors[i], authors[j]
                if a == b:
                    continue
                if g.has_edge(a, b):
                    g[a][b]["weight"] += 1
                else:
                    g.add_edge(a, b, weight=1)
    return g
