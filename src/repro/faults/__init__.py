"""Deterministic fault injection and resilience for the pipeline.

The original study harvested flaky real-world services — conference
websites, genderize.io, Google Scholar (68.3% coverage) — and its
numbers describe the partial dataset that survived.  This package lets
the reproduction model that reality on purpose:

- :mod:`repro.faults.plan`       — seed-derived :class:`FaultPlan`:
  which call fails, and how (transient / timeout / rate limit /
  malformed payload).  Pure function of ``(seed, service, key,
  attempt)`` — independent of scheduling.
- :mod:`repro.faults.session`    — :class:`FaultSession`: retries with
  exponential backoff + deterministic jitter on a virtual clock, a
  per-service circuit breaker, call/fault counters.
- :mod:`repro.faults.breaker`    — the call-counted circuit breaker.
- :mod:`repro.faults.chaos`      — seed-derived :class:`ChaosPlan` of
  *engine-level* faults (node exceptions, hangs, torn/bit-flipped
  cache writes) driving the supervised executor's chaos harness.
- :mod:`repro.faults.corrupt`    — the malformation matrix (truncated
  pages, missing sections, CSS drift, broken email markup, garbage
  API payloads).
- :mod:`repro.faults.wrappers`   — resilient facades over the
  genderize / Google Scholar / Semantic Scholar clients.
- :mod:`repro.faults.degradation` — :class:`LossRecord`,
  :class:`FaultStats` and the :class:`DegradedCoverage` report that
  :class:`~repro.pipeline.runner.PipelineResult` carries.

Nothing here can raise out of :func:`repro.pipeline.run_pipeline`: every
exhausted retry becomes a loss record, never an abort.
"""

from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.chaos import (
    ChaosConfig,
    ChaosError,
    ChaosKind,
    ChaosPlan,
    corrupt_bytes,
)
from repro.faults.corrupt import (
    CORRUPTION_TAGS,
    corrupt_edition,
    corrupt_genderize_response,
    genderize_response_wellformed,
)
from repro.faults.degradation import DegradedCoverage, FaultStats, LossRecord
from repro.faults.errors import (
    CircuitOpenError,
    FaultError,
    MalformedPayloadError,
    RateLimitError,
    RetryExhaustedError,
    ServiceTimeout,
    TransientServiceError,
)
from repro.faults.plan import (
    BreakerConfig,
    FaultConfig,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.faults.session import FaultSession
from repro.faults.wrappers import (
    ResilientGenderizeClient,
    ResilientGoogleScholar,
    ResilientSemanticScholar,
)

__all__ = [
    "FaultKind",
    "FaultConfig",
    "FaultPlan",
    "ChaosKind",
    "ChaosConfig",
    "ChaosPlan",
    "ChaosError",
    "corrupt_bytes",
    "RetryPolicy",
    "BreakerConfig",
    "FaultSession",
    "CircuitBreaker",
    "BreakerState",
    "FaultError",
    "TransientServiceError",
    "ServiceTimeout",
    "RateLimitError",
    "MalformedPayloadError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "LossRecord",
    "FaultStats",
    "DegradedCoverage",
    "CORRUPTION_TAGS",
    "corrupt_edition",
    "corrupt_genderize_response",
    "genderize_response_wellformed",
    "ResilientGenderizeClient",
    "ResilientGoogleScholar",
    "ResilientSemanticScholar",
]
