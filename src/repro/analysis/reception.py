"""§4.2 / Fig. 2 — paper reception by lead-author gender.

Citations at 36 months: 53 female-led papers averaging 13.04 vs 435
male-led at 10.55; excluding the single >450-citation female-led outlier
drops the female mean to 7.63 (Welch t = −2.18, df = 86, p = 0.032);
23% of female-led vs 38% of male-led papers reach i10 (χ² = 3.69,
p = 0.055).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result, chi2_two_proportions
from repro.stats.kde import KdeResult, gaussian_kde
from repro.stats.ttest import TTestResult, welch_ttest

__all__ = ["ReceptionReport", "reception_report"]


@dataclass(frozen=True)
class ReceptionReport:
    """Fig. 2's quantities."""

    n_female_lead: int
    n_male_lead: int
    mean_female: float               # including the outlier
    mean_male: float
    outlier_citations: int | None    # the single max female-led paper
    mean_female_no_outlier: float
    welch_no_outlier: TTestResult    # female (no outlier) vs male
    i10_female: float                # share of female-led papers ≥ 10 cites
    i10_male: float
    i10_test: Chi2Result
    kde_female: KdeResult | None     # densities behind the figure
    kde_male: KdeResult | None


def reception_report(ds: AnalysisDataset, outlier_threshold: int = 100) -> ReceptionReport:
    """Compute Fig. 2 over an analysis dataset.

    ``outlier_threshold``: the outlier is the maximum female-led paper
    *if* it exceeds this many citations (the paper's outlier is >450 at
    ~4 years, ≈294 at 36 months); otherwise no exclusion happens.
    """
    papers = ds.papers
    lead = papers.col("first_gender")
    cites = papers["citations_36mo"].astype(np.float64)
    have_cites = ~np.isnan(cites)

    f_mask = np.array([g == "F" for g in lead.values], dtype=bool) & have_cites
    m_mask = np.array([g == "M" for g in lead.values], dtype=bool) & have_cites
    fc = cites[f_mask]
    mc = cites[m_mask]

    outlier = float(fc.max()) if fc.size else float("nan")
    exclude = fc.size > 1 and outlier >= outlier_threshold
    fc_no = fc[fc != outlier] if exclude else fc

    welch = welch_ttest(fc_no, mc)
    i10_f = float(np.mean(fc >= 10)) if fc.size else float("nan")
    i10_m = float(np.mean(mc >= 10)) if mc.size else float("nan")
    i10_test = chi2_two_proportions(
        int(np.sum(fc >= 10)), int(fc.size), int(np.sum(mc >= 10)), int(mc.size)
    ) if fc.size and mc.size else Chi2Result(float("nan"), 1, float("nan"), ())

    kde_f = gaussian_kde(fc) if fc.size >= 2 else None
    kde_m = gaussian_kde(mc) if mc.size >= 2 else None

    return ReceptionReport(
        n_female_lead=int(fc.size),
        n_male_lead=int(mc.size),
        mean_female=float(fc.mean()) if fc.size else float("nan"),
        mean_male=float(mc.mean()) if mc.size else float("nan"),
        outlier_citations=int(outlier) if exclude else None,
        mean_female_no_outlier=float(fc_no.mean()) if fc_no.size else float("nan"),
        welch_no_outlier=welch,
        i10_female=i10_f,
        i10_male=i10_m,
        i10_test=i10_test,
        kde_female=kde_f,
        kde_male=kde_m,
    )
