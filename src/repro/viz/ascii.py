"""ASCII bar charts and histograms."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["bar_chart", "histogram"]


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    fmt: str = "{:.1f}",
    title: str | None = None,
) -> str:
    """Horizontal bar chart of labeled nonnegative values.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))  # doctest: +SKIP
    a | #### 2.0
    b | ##   1.0
    """
    if not values:
        return "(no data)"
    finite = {k: (0.0 if v is None or v != v else float(v)) for k, v in values.items()}
    peak = max(finite.values()) or 1.0
    label_w = max(len(str(k)) for k in finite)
    lines = []
    for k, v in finite.items():
        n = int(round(width * v / peak)) if peak > 0 else 0
        lines.append(f"{str(k).ljust(label_w)} | {'#' * n:<{width}} {fmt.format(v)}")
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body


def histogram(
    sample: Sequence[float],
    bins: int = 20,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Vertical-axis-free histogram of a numeric sample."""
    v = np.asarray(list(sample), dtype=np.float64)
    v = v[~np.isnan(v)]
    if v.size == 0:
        return "(no data)"
    counts, edges = np.histogram(v, bins=bins)
    peak = counts.max() or 1
    lines = []
    for i, c in enumerate(counts):
        n = int(round(width * c / peak))
        lines.append(f"[{edges[i]:9.2f},{edges[i+1]:9.2f}) | {'#' * n} {c}")
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body
