"""Deterministic chaos plans for the engine.

:mod:`repro.faults.plan` models *service-level* failure (flaky sites,
API quotas); this module models *engine-level* failure — the things
that kill long multi-venue runs in practice:

- a stage body raising mid-run (:class:`ChaosError`),
- a stage hanging until a watchdog would have cut it off,
- a cache write torn by a crash (truncated pickle under the final name),
- a cache entry silently bit-flipped on disk.

A :class:`ChaosPlan` answers "does this site fault, and how?" as a pure
function of the chaos seed and the site's *identity* — ``(node,
attempt)`` for execution faults, ``(node, key)`` for write faults — via
:func:`repro.util.rng.derive_seed`, the same discipline as
:class:`~repro.faults.plan.FaultPlan`.  Two runs with the same chaos
seed inject byte-identical fault sequences regardless of worker count,
which is what lets the chaos tests assert full ledger-body determinism
under injected failure.

Hangs are *virtual*: the plan never blocks a process.  A hung node is
charged its deadline (or :attr:`ChaosConfig.hang_cost`) on the
supervisor's virtual clock and surfaces as a ``node.timeout``, exactly
what a wall watchdog would have produced, without the wall time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_seed
from repro.util.validation import check_fraction

__all__ = [
    "ChaosKind",
    "ChaosConfig",
    "ChaosPlan",
    "ChaosError",
    "corrupt_bytes",
]


class ChaosKind(enum.Enum):
    """How an injected engine-level fault manifests."""

    EXCEPTION = "exception"  # the node body raises
    HANG = "hang"  # the node never finishes (virtual; becomes a timeout)
    TORN_WRITE = "torn-write"  # cache entry truncated mid-write
    BITFLIP = "bitflip"  # one bit of the stored entry flipped


#: fault kinds drawn at node-execution sites, in weight order
NODE_KINDS: tuple[ChaosKind, ...] = (ChaosKind.EXCEPTION, ChaosKind.HANG)
#: fault kinds drawn at cache-write sites, in weight order
WRITE_KINDS: tuple[ChaosKind, ...] = (ChaosKind.TORN_WRITE, ChaosKind.BITFLIP)


class ChaosError(RuntimeError):
    """The chaos plan injected an exception into a node body."""

    def __init__(self, node: str, attempt: int) -> None:
        super().__init__(f"chaos: injected exception in node {node!r} attempt {attempt}")
        self.node = node
        self.attempt = attempt


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a chaos plan needs; small, frozen, picklable.

    ``rate`` is the per-site fault probability at node-execution sites;
    ``write_rate`` the probability at cache-write sites (``None`` means
    "same as ``rate``").  Weights are relative odds among each domain's
    kinds, in :data:`NODE_KINDS` / :data:`WRITE_KINDS` order.
    ``hang_cost`` is the virtual seconds a hung node is charged when its
    policy declares no deadline.
    """

    rate: float = 0.0
    seed: int = 0
    write_rate: float | None = None
    node_weights: tuple[float, float] = (0.7, 0.3)
    write_weights: tuple[float, float] = (0.6, 0.4)
    hang_cost: float = 30.0

    def __post_init__(self) -> None:
        check_fraction(self.rate, "rate")
        if self.write_rate is not None:
            check_fraction(self.write_rate, "write_rate")
        for name, weights, kinds in (
            ("node_weights", self.node_weights, NODE_KINDS),
            ("write_weights", self.write_weights, WRITE_KINDS),
        ):
            if len(weights) != len(kinds):
                raise ValueError(f"{name} must have {len(kinds)} entries")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError(f"{name} must be non-negative and sum > 0")
        if self.hang_cost < 0:
            raise ValueError("hang_cost must be >= 0")

    @property
    def effective_write_rate(self) -> float:
        return self.rate if self.write_rate is None else self.write_rate


class ChaosPlan:
    """Seed-derived oracle for engine-level fault decisions."""

    __slots__ = ("_config", "_node_probs", "_write_probs")

    def __init__(self, config: ChaosConfig) -> None:
        self._config = config
        self._node_probs = np.asarray(config.node_weights, dtype=float)
        self._node_probs = self._node_probs / self._node_probs.sum()
        self._write_probs = np.asarray(config.write_weights, dtype=float)
        self._write_probs = self._write_probs / self._write_probs.sum()

    @property
    def config(self) -> ChaosConfig:
        return self._config

    def _draw(
        self,
        rate: float,
        kinds: tuple[ChaosKind, ...],
        probs: np.ndarray,
        *path: str | int,
    ) -> ChaosKind | None:
        if rate <= 0.0:
            return None
        rng = np.random.default_rng(derive_seed(self._config.seed, *path))
        if rng.random() >= rate:
            return None
        return kinds[int(rng.choice(len(kinds), p=probs))]

    def draw_node(self, node: str, attempt: int) -> ChaosKind | None:
        """The execution fault (or None) injected into this node attempt."""
        return self._draw(
            self._config.rate,
            NODE_KINDS,
            self._node_probs,
            "chaos-node",
            node,
            attempt,
        )

    def draw_write(self, node: str, key: str) -> ChaosKind | None:
        """The write fault (or None) injected into this cache save."""
        return self._draw(
            self._config.effective_write_rate,
            WRITE_KINDS,
            self._write_probs,
            "chaos-write",
            node,
            key,
        )

    def write_rng(self, node: str, key: str) -> np.random.Generator:
        """Generator driving the byte corruption for one write fault."""
        return np.random.default_rng(
            derive_seed(self._config.seed, "chaos-bytes", node, key)
        )


def corrupt_bytes(data: bytes, kind: ChaosKind, rng: np.random.Generator) -> bytes:
    """Apply one write-fault kind to a serialized payload.

    ``TORN_WRITE`` truncates at a point drawn in the first 90% of the
    payload (a crash between write and flush); ``BITFLIP`` flips exactly
    one bit (silent media corruption).  Both are deterministic for a
    given generator state and always differ from the input.
    """
    if not data:
        return data
    if kind is ChaosKind.TORN_WRITE:
        cut = int(rng.integers(0, max(1, (len(data) * 9) // 10)))
        return data[:cut]
    if kind is ChaosKind.BITFLIP:
        pos = int(rng.integers(0, len(data)))
        bit = 1 << int(rng.integers(0, 8))
        flipped = bytearray(data)
        flipped[pos] ^= bit
        return bytes(flipped)
    raise ValueError(f"{kind} is not a write-fault kind")
