"""Experiment registry: DESIGN.md ids → runnable builders.

Each experiment takes a :class:`~repro.pipeline.runner.PipelineResult`
and returns ``(payload, text)``; the benchmark harness times the
builders and prints the text, and ``examples/regenerate_paper.py`` runs
them all.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.blind import blind_report
from repro.analysis.casestudy import casestudy_report
from repro.analysis.far import far_report
from repro.analysis.hpctopic import hpc_topic_report
from repro.analysis.pc import pc_report
from repro.analysis.sensitivity import sensitivity_report
from repro.analysis.visible import visible_report
from repro.pipeline.runner import PipelineResult
from repro.report.figures import (
    build_fig1,
    build_fig2,
    build_fig3,
    build_fig4,
    build_fig5,
    build_fig6,
    build_fig7,
    build_fig8,
)
from repro.report.tables import build_table1, build_table2, build_table3

__all__ = ["EXPERIMENTS", "run_experiment"]


def _t(table_builder):
    def run(result: PipelineResult):
        table, text = table_builder(result.dataset)
        return table, text

    return run


def _f(fig_builder):
    def run(result: PipelineResult):
        fig = fig_builder(result.dataset)
        return fig.data, fig.text

    return run


def _headline(result: PipelineResult):
    ds = result.dataset
    far = far_report(ds)
    blind = blind_report(ds)
    pc = pc_report(ds)
    lines = [
        f"FAR overall: {far.overall} (paper: 9.9%)",
        f"FAR SC: {far.conference('SC').authors} (paper: 8.12%)",
        f"FAR ISC: {far.conference('ISC').authors} (paper: 5.77%)",
        f"double-blind {blind.authors_double} vs single-blind {blind.authors_single} "
        f"(chi2={blind.authors_test.statistic:.3f}, p={blind.authors_test.p_value:.4f}; "
        "paper: 7.57% vs 10.52%, chi2=3.133, p=0.0767)",
        f"lead double {blind.lead_double} vs single {blind.lead_single} "
        f"(chi2={blind.lead_test.statistic:.3f}; paper: 6.17% vs 11.79%, chi2=1.662)",
        f"last authors: {far.last_overall} vs all {far.overall} "
        f"(chi2={far.last_vs_all.statistic:.3f}, p={far.last_vs_all.p_value:.3f}; "
        "paper: 8.4% vs 9.9%, chi2=0.724, p=0.395)",
        f"PC: {pc.memberships} (paper: 18.46% of 1220); SC PC {pc.by_conference['SC']} "
        f"(paper 29.6%); excl. SC {pc.excluding_sc} (paper 16.1%)",
        f"zero-women PC chairs at: {', '.join(pc.zero_women_chair_confs)} (paper: 4 confs)",
    ]
    return {"far": far, "blind": blind, "pc": pc}, "\n".join(lines)


def _visible(result: PipelineResult):
    vis = visible_report(result.dataset)
    lines = [
        f"zero-women keynotes at: {', '.join(vis.zero_women_confs['keynote'])} (paper: 4 confs)",
        f"zero-women session chairs at: {', '.join(vis.zero_women_confs['session_chair'])} "
        f"covering {vis.zero_session_chair_seats} seats (paper: HPDC/HPCC/HiPC, 45 seats)",
    ]
    for role, p in vis.overall.items():
        lines.append(f"{role}: {p}")
    return vis, "\n".join(lines)


def _hpc(result: PipelineResult):
    h = hpc_topic_report(result.dataset)
    text = (
        f"HPC papers: {h.hpc_papers}/{h.all_papers} (paper: 178/518)\n"
        f"authors: {h.authors_hpc} vs overall {h.authors_all} "
        f"(chi2={h.authors_test.statistic:.3f}, p={h.authors_test.p_value:.3f}; "
        "paper: 10.1% vs 9.9%)\n"
        f"leads: {h.lead_hpc} vs overall {h.lead_all} "
        f"(chi2={h.lead_test.statistic:.3f}, p={h.lead_test.p_value:.3f}; "
        "paper: 11.05% vs 10.86%, chi2=0.0547, p=0.8151)"
    )
    return h, text


def _casestudy(result: PipelineResult):
    cs = casestudy_report(result.world.timeline)
    lines = []
    for conf, points in cs.series.items():
        series = ", ".join(f"{p.year}:{100*p.far:.1f}%" for p in points)
        lo, hi = cs.far_range[conf]
        lines.append(
            f"{conf}: {series}  (range {100*lo:.1f}%-{100*hi:.1f}%; "
            f"trend r={cs.trend[conf].r:.2f})"
        )
    lines.append("paper: SC attendance ~13-14%; ISC FAR 5%-9%")
    return cs, "\n".join(lines)


def _policy(result: PipelineResult):
    from repro.analysis.policies import policy_report

    rep = policy_report(result.dataset)
    lines = [
        f"PC-share vs author-FAR correlation across conferences: "
        f"r={rep.pc_vs_author_correlation.r:.3f} "
        f"p={rep.pc_vs_author_correlation.p_value:.3f} "
        "(paper: 'the two metrics appear to be unrelated')",
        f"diversity-policy conferences: {', '.join(rep.policy_confs)}",
        f"author FAR with policy {rep.far_policy} vs without {rep.far_no_policy} "
        f"(chi2={rep.policy_test.statistic:.2f}, p={rep.policy_test.p_value:.3f})",
        f"policy conferences below the overall average: {rep.policy_confs_below_average} "
        "(the §3.4 paradox)",
    ]
    return rep, "\n".join(lines)


def _sensitivity(result: PipelineResult):
    rep = sensitivity_report(result.dataset)
    lines = [
        f"unknown-gender researchers: {rep.unknowns} "
        f"({100*rep.unknowns/max(1,result.dataset.researchers.num_rows):.2f}%; paper: 144, 3.03%)",
        f"FAR baseline {100*rep.far_values['baseline']:.2f}% | "
        f"all-women {100*rep.far_values['all_women']:.2f}% | "
        f"all-men {100*rep.far_values['all_men']:.2f}%",
        f"all observations stable: {rep.all_stable} (paper: none changed)",
    ]
    for o in rep.observations:
        lines.append(
            f"  {o.name}: base={o.baseline} allF={o.all_women} allM={o.all_men}"
            + ("" if o.stable else "  <-- FLIPPED")
        )
    return rep, "\n".join(lines)


#: experiment id -> builder(result) -> (payload, text)
EXPERIMENTS: dict[str, Callable[[PipelineResult], tuple[Any, str]]] = {
    "T1": _t(build_table1),
    "T2": _t(build_table2),
    "T3": _t(build_table3),
    "F1": _f(build_fig1),
    "F2": _f(build_fig2),
    "F3": _f(build_fig3),
    "F4": _f(build_fig4),
    "F5": _f(build_fig5),
    "F6": _f(build_fig6),
    "F7": _f(build_fig7),
    "F8": _f(build_fig8),
    "S3.1": _headline,
    "S3.3": _visible,
    "S3.4": _casestudy,
    "S4.1": _hpc,
    "SENS": _sensitivity,
    "POLICY": _policy,
}


def run_experiment(exp_id: str, result: PipelineResult) -> tuple[Any, str]:
    """Run one experiment by DESIGN.md id."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[exp_id](result)
