"""Property-style tests: corrupted harvests through the stage validators.

The generator is :func:`repro.faults.corrupt.corrupt_edition` — the same
malformation matrix the fault layer uses — driven across many seeds, so
the validators face exactly the dirt the resilient scraper emits.  The
property under test is *conservation*: whatever the corruption did,
``admitted + held == baseline`` per entity, and the quarantine ledger is
deterministic in the corruption seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.contracts import (
    ContractSession,
    ContractViolationError,
    Disposition,
    ValidationMode,
    validate_assignments,
    validate_enrichment,
    validate_harvest,
    validate_linked,
)
from repro.faults.corrupt import corrupt_edition
from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.harvest.proceedings import build_proceedings
from repro.harvest.scrape import scrape_site
from repro.harvest.sitegen import generate_site
from repro.pipeline.link import link_identities

from tests.contracts.test_schema import make_edition, make_paper

pytestmark = pytest.mark.contracts


def _scrape_corrupted(world, seed: int):
    """Every 2017 edition, scraped from deterministically mangled pages."""
    rng = np.random.default_rng(seed)
    out = []
    for e in sorted(world.registry.editions.values(), key=lambda e: e.date):
        if e.year != 2017:
            continue
        site = generate_site(world.registry, e.name, e.year)
        proceedings = build_proceedings(world.registry, e.name, e.year)
        site, proceedings, _tags = corrupt_edition(site, proceedings, rng)
        out.append(scrape_site(site, proceedings))
    return out


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_harvest_conservation_under_corruption(small_world, seed):
    session = ContractSession(mode=ValidationMode.REPAIR)
    conferences = _scrape_corrupted(small_world, seed)
    admitted = validate_harvest(conferences, session)

    store = session.store
    base = session.baselines
    assert len(admitted) + store.held_count("edition") == base.get("edition", 0)
    assert sum(len(c.papers) for c in admitted) + store.held_count("paper") == (
        base.get("paper", 0)
    )
    assert sum(len(c.roles) for c in admitted) + store.held_count("role") == (
        base.get("role", 0)
    )
    # everything that came through conforms *now*
    from repro.contracts import EDITION_SCHEMA, PAPER_SCHEMA, ROLE_SCHEMA

    for conf in admitted:
        assert EDITION_SCHEMA.validate(conf) == []
        for p in conf.papers:
            assert PAPER_SCHEMA.validate(p) == []
        for r in conf.roles:
            assert ROLE_SCHEMA.validate(r) == []


def test_quarantine_is_deterministic(small_world):
    def run():
        session = ContractSession(mode=ValidationMode.REPAIR)
        validate_harvest(_scrape_corrupted(small_world, 42), session)
        return session.store

    assert run().entries == run().entries


def test_audit_mode_admits_everything(small_world):
    conferences = _scrape_corrupted(small_world, 7)
    session = ContractSession(mode=ValidationMode.AUDIT)
    admitted = validate_harvest([dataclasses.replace(c) for c in conferences], session)
    assert len(admitted) == len(conferences)
    for got, want in zip(admitted, conferences):
        assert got.papers == want.papers and got.roles == want.roles
    # audit mode never holds, only flags
    assert not session.store.held()
    assert all(
        e.disposition == Disposition.FLAGGED for e in session.store.entries
    )


def test_strict_mode_raises_on_bad_edition():
    session = ContractSession(mode=ValidationMode.STRICT)
    bad = make_edition(year=9999)
    with pytest.raises(ContractViolationError) as err:
        validate_harvest([bad], session)
    assert err.value.entity == "edition"
    assert any("year" in (v.field or "") for v in err.value.violations)


def test_strict_mode_refuses_malformed_edition():
    session = ContractSession(mode=ValidationMode.STRICT)
    conf = make_edition()
    with pytest.raises(ContractViolationError) as err:
        validate_harvest([conf], session, malformed=["SC-2017"])
    assert err.value.violations[0].code == "edition.corrupted-source"


def test_repair_mode_flags_malformed_edition():
    session = ContractSession(mode=ValidationMode.REPAIR)
    out = validate_harvest([make_edition()], session, malformed=["SC-2017"])
    assert len(out) == 1
    codes = session.store.violation_codes()
    assert codes.get("edition.corrupted-source") == 1


def test_held_edition_withdraws_contents_wholesale():
    """A quarantined edition's papers never count toward the paper baseline."""
    session = ContractSession(mode=ValidationMode.REPAIR)
    hopeless = make_edition(year=9999, papers=[make_paper()])
    fine = make_edition(conference="ISC", papers=[make_paper(paper_id="ISC-1")])
    out = validate_harvest([hopeless, fine], session)
    assert [c.conference for c in out] == ["ISC"]
    assert session.baselines["edition"] == 2
    assert session.baselines["paper"] == 1  # only the admitted edition's
    assert session.store.held_count("edition") == 1


def test_validate_linked_strips_held_researcher_ids(small_world):
    from repro.pipeline.ingest import ingest_world

    linked = link_identities(ingest_world(small_world))
    # break one researcher irreparably: blank the name entirely
    rid = next(iter(linked.researchers))
    rec = linked.researchers[rid]
    rec_broken = type(rec)(
        researcher_id=rec.researcher_id,
        full_name="",
        name_key="",
        emails=list(rec.emails),
        roles=list(rec.roles),
    )
    researchers = dict(linked.researchers)
    researchers[rid] = rec_broken
    linked = type(linked)(
        researchers=researchers, papers=linked.papers, conferences=linked.conferences
    )

    session = ContractSession(mode=ValidationMode.REPAIR)
    out = validate_linked(linked, session)
    assert rid not in out.researchers
    assert session.store.held_count("researcher") == 1
    for p in out.papers:
        assert rid not in p.author_ids


def test_validate_assignments_substitutes_unassigned():
    good = GenderAssignment(Gender.F, InferenceMethod.MANUAL, 1.0)
    hopeless = GenderAssignment("X", "bogus", 3.0)
    session = ContractSession(mode=ValidationMode.REPAIR)
    out = validate_assignments({"r1": good, "r2": hopeless}, session)
    # every researcher keeps an assignment: coverage stays a partition
    assert set(out) == {"r1", "r2"}
    assert out["r1"] is good
    assert out["r2"].gender is Gender.UNKNOWN
    # the substitution is recorded in the ledger, not silent
    repaired = session.store.by_disposition(Disposition.REPAIRED)
    assert [e.key for e in repaired] == ["r2"]
    assert "reset-to-unassigned" in repaired[0].repairs


def test_validate_enrichment_repairs_and_drops(small_world):
    from repro.pipeline.enrich import Enrichment, enrich_researchers
    from repro.pipeline.ingest import ingest_world

    linked = link_identities(ingest_world(small_world))
    enrichment = enrich_researchers(
        linked, small_world.gs_store, small_world.s2_store
    )
    rid = next(iter(enrichment))
    enrichment[rid] = dataclasses.replace(enrichment[rid], gs_h_index=-4)
    session = ContractSession(mode=ValidationMode.REPAIR)
    out = validate_enrichment(enrichment, session)
    assert out[rid].gs_h_index is None  # nulled, not dropped
    repaired = session.store.by_disposition(Disposition.REPAIRED)
    assert [e.key for e in repaired] == [rid]
    assert len(out) + session.store.held_count("enrichment_row") == len(enrichment)
