#!/usr/bin/env python3
"""Regenerate every table and figure of the paper, plus the comparison.

Usage::

    python examples/regenerate_paper.py [--seed N] [--out DIR]

Runs all registered experiments (T1–T3, F1–F8, §3.1/§3.3/§3.4/§4.1,
SENS), prints each artifact, and finishes with the paper-vs-measured
comparison table that backs EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.pipeline import RunConfig, run_pipeline
from repro.report import EXPERIMENTS, compare_headlines, run_experiment
from repro.report.compare import render_comparison
from repro.synth import WorldConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=None,
                        help="also write each artifact to DIR/<id>.txt")
    args = parser.parse_args()

    result = run_pipeline(RunConfig(world=WorldConfig(seed=args.seed, scale=1.0)))
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    for exp_id in EXPERIMENTS:
        _, text = run_experiment(exp_id, result)
        banner = f"===== {exp_id} " + "=" * max(0, 66 - len(exp_id))
        print(banner)
        print(text)
        print()
        if args.out:
            (args.out / f"{exp_id}.txt").write_text(text + "\n", encoding="utf-8")

    rows = compare_headlines(result)
    print("===== paper vs measured " + "=" * 50)
    print(render_comparison(rows))
    close = sum(1 for r in rows if r.rel_error < 0.25)
    print(f"\n{close}/{len(rows)} headline statistics within 25% of the paper's value")


if __name__ == "__main__":
    main()
