"""The ``--ledger`` flag and the ``repro runs`` subcommands end to end."""

import json

import pytest

from repro.cli import EXIT_REGRESSION, main
from repro.obs import RunLedger

from tests.obs.test_sentinel import make_record

pytestmark = [pytest.mark.obs, pytest.mark.ledger]


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


@pytest.fixture(scope="module")
def obs_dir(tmp_path_factory):
    """Two identical-seed ledgered runs plus one with a perturbed seed."""
    d = tmp_path_factory.mktemp("obs")
    base = ["--scale", "0.1", "--ledger", "--obs-dir", str(d)]
    assert main([*base, "--seed", "11", "run"]) == 0
    assert main([*base, "--seed", "11", "run"]) == 0
    assert main([*base, "--seed", "12", "run"]) == 0
    return d


class TestLedgerFlag:
    def test_three_runs_recorded(self, obs_dir):
        ledger = RunLedger(obs_dir / "ledger")
        records = ledger.records()
        assert [r.run_id[:8] for r in records] == [
            "run-0001", "run-0002", "run-0003"
        ]
        # identical seeds share a body digest; the perturbed seed does not
        assert records[0].digest == records[1].digest
        assert records[0].digest != records[2].digest
        # each run leaves its event stream beside the ledger
        for rec in records:
            assert ledger.events_path(rec.run_id).exists()

    def test_artifacts_stay_under_obs_dir(self, obs_dir):
        """Satellite: --obs-dir artifacts never land in the repo root."""
        from pathlib import Path

        assert not Path("runs.jsonl").exists()
        assert not Path("trace.json").exists()
        assert (obs_dir / "ledger" / "runs.jsonl").exists()


class TestRunsList:
    def test_lists_every_run_with_digest_prefix(self, obs_dir, capsys):
        code, out = run_cli(capsys, "--obs-dir", str(obs_dir), "runs", "list")
        assert code == 0
        assert out.count("run-000") == 3
        assert "scientific digest" in out

    def test_empty_ledger_is_not_an_error_for_list(self, tmp_path, capsys):
        code, out = run_cli(capsys, "--obs-dir", str(tmp_path), "runs", "list")
        assert code == 0 and "no runs recorded" in out


class TestRunsShow:
    def test_show_defaults_to_latest(self, obs_dir, capsys):
        code, out = run_cli(capsys, "--obs-dir", str(obs_dir), "runs", "show")
        assert code == 0
        doc = json.loads(out)
        assert doc["run_id"].startswith("run-0003")
        assert doc["body"]["meta"]["seed"] == 12

    def test_show_accepts_a_prefix(self, obs_dir, capsys):
        code, out = run_cli(
            capsys, "--obs-dir", str(obs_dir), "runs", "show", "run-0001"
        )
        assert code == 0
        assert json.loads(out)["body"]["meta"]["seed"] == 11

    def test_unknown_run_id_fails_cleanly(self, obs_dir, capsys):
        assert main(["--obs-dir", str(obs_dir), "runs", "show", "run-9999"]) == 2


class TestRunsDiff:
    def test_identical_runs_diff_clean(self, obs_dir, capsys):
        code, out = run_cli(
            capsys, "--obs-dir", str(obs_dir), "runs", "diff",
            "run-0001", "run-0002",
        )
        assert code == 0 and "identical" in out

    def test_perturbed_seed_diff_shows_first_differing_cell(self, obs_dir, capsys):
        code, out = run_cli(
            capsys, "--obs-dir", str(obs_dir), "runs", "diff",
            "run-0002", "run-0003",
        )
        assert code == 0
        assert "not like-for-like" in out
        assert "first differing cell" in out


class TestRunsRegress:
    def test_identical_history_verdict_ok(self, obs_dir, capsys):
        code, out = run_cli(
            capsys, "--obs-dir", str(obs_dir), "runs", "regress", "run-0002"
        )
        assert code == 0 and "verdict: OK" in out

    def test_perturbed_seed_reports_drift_as_config_change(self, obs_dir, capsys):
        code, out = run_cli(capsys, "--obs-dir", str(obs_dir), "runs", "regress")
        assert code == 0  # deliberate config change, not a regression
        assert "SCIENTIFIC DRIFT" in out
        assert "first differing cell" in out
        assert "far." in out or "blind." in out or "pc." in out

    def test_same_config_drift_exits_nonzero(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "ledger")
        ledger.append(make_record())
        ledger.append(make_record(cells={"far.overall": "DRIFTED"}))
        code, out = run_cli(capsys, "--obs-dir", str(tmp_path), "runs", "regress")
        assert code == EXIT_REGRESSION
        assert "verdict: REGRESSED" in out


class TestRunsReport:
    def test_dashboard_written_under_the_ledger(self, obs_dir, capsys):
        code, out = run_cli(capsys, "--obs-dir", str(obs_dir), "runs", "report")
        assert code == 0
        path = obs_dir / "ledger" / "dashboard.html"
        assert path.exists()
        html = path.read_text(encoding="utf-8")
        assert "run-0001" in html and "Sentinel verdict" in html

    def test_output_flag_overrides_the_path(self, obs_dir, tmp_path, capsys):
        out_path = tmp_path / "report.html"
        code, _ = run_cli(
            capsys, "--obs-dir", str(obs_dir), "runs", "report",
            "--output", str(out_path),
        )
        assert code == 0 and out_path.exists()
