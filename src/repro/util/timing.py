"""Minimal wall-clock stage timing for the pipeline and benchmarks,
plus the virtual clock the resilience layer's backoff runs on.

:class:`StageTimer` is now a thin compatibility shim over the tracing
layer (:mod:`repro.obs.span`): attach a tracer and every timed stage
also opens a trace span, while ``timer.durations`` keeps its historical
dict-of-seconds shape for the benchmarks and reports that grew up on it.

Two long-standing reporting bugs are fixed here and guarded by
regression tests (``tests/obs/test_regressions.py``):

- a stage name that runs more than once (checkpoint resume, per-edition
  retries, the repeated ``contracts`` hand-offs) **accumulates** its
  durations instead of silently overwriting the earlier entry;
- :meth:`StageTimer.report` sizes its name column to the longest stage
  name instead of misaligning everything past 20 characters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["StageTimer", "VirtualClock"]


@dataclass
class VirtualClock:
    """A clock that only moves when told to.

    Retry backoff and rate-limit penalties "sleep" on this clock, so a
    faulted run is charged realistic latency without any process ever
    blocking — and the accumulated time is bit-identical across worker
    counts because each work item owns its own clock.
    """

    now: float = 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.now += seconds


@dataclass
class StageTimer:
    """Records named stage durations (accumulating over repeats).

    Usage::

        timer = StageTimer()
        with timer.stage("harvest"):
            ...
        timer.durations["harvest"]  # seconds, summed over every entry

    ``resumed`` names stages whose work was loaded from a checkpoint
    rather than recomputed — their near-zero durations are honest load
    times, and :meth:`report` says so instead of letting them read as
    "the stage was this fast".
    """

    durations: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    resumed: set[str] = field(default_factory=set)
    cached: set[str] = field(default_factory=set)
    tracer: "object | None" = None  # repro.obs.span.Tracer, duck-typed

    def stage(self, name: str) -> "_Stage":
        return _Stage(self, name)

    def mark_resumed(self, name: str) -> None:
        """Record that ``name``'s work came from a checkpoint this run."""
        self.resumed.add(name)
        self.durations.setdefault(name, 0.0)

    def mark_cached(self, name: str) -> None:
        """Record that ``name`` was served from the engine artifact cache."""
        self.cached.add(name)
        self.durations.setdefault(name, 0.0)

    def total(self) -> float:
        return sum(self.durations.values())

    def report(self) -> str:
        width = max([20] + [len(n) for n in self.durations])
        lines = []
        for name, secs in self.durations.items():
            suffix = ""
            if self.counts.get(name, 0) > 1:
                suffix += f"  (x{self.counts[name]})"
            if name in self.resumed:
                suffix += "  (resumed from checkpoint)"
            if name in self.cached:
                suffix += "  (cache hit)"
            lines.append(f"{name:<{width}s} {secs * 1e3:9.2f} ms{suffix}")
        lines.append(f"{'total':<{width}s} {self.total() * 1e3:9.2f} ms")
        return "\n".join(lines)


class _Stage:
    def __init__(self, timer: StageTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._t0 = 0.0
        self._span_cm = None

    def __enter__(self) -> "_Stage":
        if self._timer.tracer is not None:
            self._span_cm = self._timer.tracer.span(self._name)
            self._span_cm.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        timer = self._timer
        timer.durations[self._name] = timer.durations.get(self._name, 0.0) + elapsed
        timer.counts[self._name] = timer.counts.get(self._name, 0) + 1
        if self._span_cm is not None:
            self._span_cm.__exit__(*exc)
            self._span_cm = None
