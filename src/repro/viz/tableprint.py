"""Fixed-width table rendering."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.tabular import Table

__all__ = ["format_table", "format_records"]


def _cell(v: Any) -> str:
    if v is None:
        return ""
    if isinstance(v, float):
        if v != v:  # NaN
            return "n/a"
        return f"{v:.4g}"
    return str(v)


def format_records(
    records: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not records:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(records[0].keys())
    grid = [[_cell(r.get(c)) for c in cols] for r in records]
    widths = [
        max(len(c), *(len(row[i]) for row in grid)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines = [header, sep]
    for row in grid:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body


def format_table(table: Table, title: str | None = None) -> str:
    """Render a tabular.Table."""
    return format_records(table.to_records(), table.columns, title)
