"""Benchmarks for the in-text analyses: §3.1/§3.2, §3.3, §3.4, §4.1."""

from benchmarks.conftest import write_artifact
from repro.report import run_experiment


def test_headline_stats(benchmark, result, output_dir):
    """S3.1/S3.2 — FAR, blind contrasts, PC composition."""
    payload, text = benchmark(run_experiment, "S3.1", result)
    write_artifact(output_dir, "S3.1", text)
    far = payload["far"]
    benchmark.extra_info["far_overall_pct"] = round(far.overall.pct, 2)
    benchmark.extra_info["far_sc_pct"] = round(far.conference("SC").authors.pct, 2)
    assert 8.5 < far.overall.pct < 11.5


def test_visible_roles(benchmark, result, output_dir):
    """S3.3 — keynotes, panelists, session chairs."""
    payload, text = benchmark(run_experiment, "S3.3", result)
    write_artifact(output_dir, "S3.3", text)
    benchmark.extra_info["zero_session_seats"] = payload.zero_session_chair_seats
    assert payload.zero_session_chair_seats == 45


def test_case_study(benchmark, result, output_dir):
    """S3.4 — SC/ISC 2016–2020 FAR trajectories."""
    payload, text = benchmark(run_experiment, "S3.4", result)
    write_artifact(output_dir, "S3.4", text)
    lo, hi = payload.far_range["ISC"]
    benchmark.extra_info["isc_far_range"] = f"{100*lo:.1f}%-{100*hi:.1f}%"
    assert hi < 0.12


def test_policy(benchmark, result, output_dir):
    """POLICY — diversity policies vs representation (§3.2/§3.4)."""
    payload, text = benchmark(run_experiment, "POLICY", result)
    write_artifact(output_dir, "POLICY", text)
    benchmark.extra_info["pc_author_r"] = round(
        payload.pc_vs_author_correlation.r, 3
    )
    assert payload.policy_confs_below_average


def test_hpc_topic(benchmark, result, output_dir):
    """S4.1 — strictly-HPC paper subset."""
    payload, text = benchmark(run_experiment, "S4.1", result)
    write_artifact(output_dir, "S4.1", text)
    benchmark.extra_info["hpc_papers"] = payload.hpc_papers
    benchmark.extra_info["hpc_far_pct"] = round(payload.authors_hpc.pct, 2)
    assert payload.hpc_papers == 178
