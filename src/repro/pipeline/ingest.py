"""Ingest: generate each conference's site and scrape it back.

One task per conference edition — the natural decomposition for the
deterministic parallel map (results are ordered by the edition list, and
site generation is a pure function of the registry, so worker count
cannot change the output).
"""

from __future__ import annotations

from repro.harvest.proceedings import build_proceedings
from repro.harvest.scrape import HarvestedConference, scrape_site
from repro.harvest.sitegen import generate_site
from repro.synth.world import SyntheticWorld
from repro.util.parallel import ParallelConfig, parallel_map

__all__ = ["ingest_world", "harvest_one"]


def harvest_one(args: tuple[SyntheticWorld, str, int]) -> HarvestedConference:
    """Generate + scrape one conference edition (module-level: picklable)."""
    world, conference, year = args
    site = generate_site(world.registry, conference, year)
    proceedings = build_proceedings(world.registry, conference, year)
    return scrape_site(site, proceedings)


def ingest_world(
    world: SyntheticWorld,
    year: int = 2017,
    parallel: ParallelConfig | None = None,
) -> list[HarvestedConference]:
    """Scrape every conference edition of ``year``."""
    editions = sorted(
        (e for e in world.registry.editions.values() if e.year == year),
        key=lambda e: e.date,
    )
    tasks = [(world, e.name, e.year) for e in editions]
    return parallel_map(harvest_one, tasks, parallel)
