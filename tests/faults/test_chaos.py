"""The deterministic chaos plan: seed discipline and corruption kinds."""

import pickle

import numpy as np
import pytest

from repro.faults.chaos import (
    NODE_KINDS,
    WRITE_KINDS,
    ChaosConfig,
    ChaosError,
    ChaosKind,
    ChaosPlan,
    corrupt_bytes,
)

pytestmark = [pytest.mark.faults, pytest.mark.chaos]

KEY = "c" * 64


class TestChaosConfig:
    def test_defaults_inject_nothing(self):
        plan = ChaosPlan(ChaosConfig())
        assert all(plan.draw_node("n", a) is None for a in range(1, 20))
        assert plan.draw_write("n", KEY) is None

    def test_rate_validated(self):
        with pytest.raises(Exception):
            ChaosConfig(rate=1.5)
        with pytest.raises(Exception):
            ChaosConfig(rate=-0.1)

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(node_weights=(1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            ChaosConfig(write_weights=(0.0, 0.0))

    def test_write_rate_defaults_to_rate(self):
        assert ChaosConfig(rate=0.3).effective_write_rate == 0.3
        assert ChaosConfig(rate=0.3, write_rate=0.0).effective_write_rate == 0.0


class TestPlanDeterminism:
    def test_same_seed_same_draws(self):
        a = ChaosPlan(ChaosConfig(rate=0.4, seed=9))
        b = ChaosPlan(ChaosConfig(rate=0.4, seed=9))
        sites = [(n, k) for n in ("ingest", "link", "enrich") for k in range(1, 5)]
        assert [a.draw_node(n, k) for n, k in sites] == [
            b.draw_node(n, k) for n, k in sites
        ]
        assert a.draw_write("ingest", KEY) == b.draw_write("ingest", KEY)

    def test_different_seeds_diverge(self):
        a = ChaosPlan(ChaosConfig(rate=0.5, seed=1))
        b = ChaosPlan(ChaosConfig(rate=0.5, seed=2))
        sites = [("node", k) for k in range(1, 40)]
        assert [a.draw_node(n, k) for n, k in sites] != [
            b.draw_node(n, k) for n, k in sites
        ]

    def test_draw_is_per_site_not_sequential(self):
        """Draw order must not matter: each site owns its decision."""
        plan = ChaosPlan(ChaosConfig(rate=0.5, seed=4))
        forward = [plan.draw_node("n", a) for a in range(1, 10)]
        backward = [plan.draw_node("n", a) for a in reversed(range(1, 10))]
        assert forward == list(reversed(backward))

    def test_rate_one_always_faults_in_domain(self):
        plan = ChaosPlan(ChaosConfig(rate=1.0, seed=7))
        for a in range(1, 10):
            assert plan.draw_node("n", a) in NODE_KINDS
        assert plan.draw_write("n", KEY) in WRITE_KINDS

    def test_observed_rate_tracks_configured_rate(self):
        plan = ChaosPlan(ChaosConfig(rate=0.2, seed=11))
        hits = sum(
            plan.draw_node(f"node{i}", 1) is not None for i in range(500)
        )
        assert 0.1 < hits / 500 < 0.3


class TestCorruptBytes:
    def _rng(self):
        return np.random.default_rng(5)

    def test_torn_write_truncates(self):
        data = pickle.dumps({"x": list(range(100))})
        broken = corrupt_bytes(data, ChaosKind.TORN_WRITE, self._rng())
        assert len(broken) < len(data)
        assert data.startswith(broken)

    def test_bitflip_flips_exactly_one_bit(self):
        data = pickle.dumps({"x": 1})
        broken = corrupt_bytes(data, ChaosKind.BITFLIP, self._rng())
        assert len(broken) == len(data)
        diff_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(data, broken)
        )
        assert diff_bits == 1

    def test_deterministic_for_a_generator_state(self):
        data = b"payload-bytes" * 20
        a = corrupt_bytes(data, ChaosKind.TORN_WRITE, np.random.default_rng(3))
        b = corrupt_bytes(data, ChaosKind.TORN_WRITE, np.random.default_rng(3))
        assert a == b

    def test_execution_kinds_rejected(self):
        with pytest.raises(ValueError):
            corrupt_bytes(b"x", ChaosKind.EXCEPTION, self._rng())

    def test_empty_payload_passthrough(self):
        assert corrupt_bytes(b"", ChaosKind.BITFLIP, self._rng()) == b""


class TestChaosError:
    def test_carries_site_identity(self):
        err = ChaosError("ingest", 2)
        assert err.node == "ingest"
        assert err.attempt == 2
        assert "ingest" in str(err)
