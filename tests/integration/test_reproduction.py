"""Full-scale reproduction accuracy: measured vs the paper's numbers.

These tests run the complete pipeline at scale 1.0 (the paper's exact
population sizes) and check every headline statistic against the
published value.  Tolerances reflect what the synthetic reconstruction
can promise: structural counts are exact, calibrated rates land within
a point or two, and test statistics must agree in *direction and
significance class* (the reproduction criterion in DESIGN.md §4).
"""

import numpy as np
import pytest

from repro.analysis import (
    blind_report,
    experience_report,
    far_report,
    geography_report,
    hpc_topic_report,
    pc_report,
    reception_report,
    sector_report,
    sensitivity_report,
    visible_report,
)
from repro.calibration.targets import TOTALS
from repro.report import build_table1, compare_headlines


@pytest.fixture(scope="module")
def ds(full_result):
    return full_result.dataset


class TestStructuralExactness:
    def test_table1_reproduced_exactly(self, ds):
        table, _ = build_table1(ds)
        expected = {
            "CCGrid": (72, 296, 0.252, "ES"),
            "IPDPS": (116, 447, 0.228, "US"),
            "ISC": (22, 99, 0.333, "DE"),
            "HPDC": (19, 76, 0.19, "US"),
            "ICPP": (60, 234, 0.286, "GB"),
            "EuroPar": (50, 179, 0.284, "ES"),
            "SC": (61, 325, 0.187, "US"),
            "HiPC": (41, 168, 0.223, "IN"),
            "HPCC": (77, 287, 0.438, "TH"),
        }
        for rec in table.to_records():
            papers, authors, acc, country = expected[rec["Conference"]]
            assert rec["Papers"] == papers
            assert rec["Authors"] == authors
            assert rec["Acceptance"] == pytest.approx(acc, abs=0.002)
            assert rec["Country"] == country

    def test_position_totals(self, ds):
        assert ds.author_positions.num_rows == TOTALS["author_positions"]
        assert ds.papers.num_rows == TOTALS["papers"]


class TestHeadlineRates:
    def test_far_overall(self, ds):
        far = far_report(ds)
        assert far.overall.pct == pytest.approx(9.9, abs=0.6)

    def test_far_flagships(self, ds):
        far = far_report(ds)
        assert far.conference("SC").authors.pct == pytest.approx(8.12, abs=1.2)
        assert far.conference("ISC").authors.pct == pytest.approx(5.77, abs=2.0)
        # flagships below the overall rate
        assert far.conference("SC").authors.value < far.overall.value

    def test_blind_contrast(self, ds):
        b = blind_report(ds)
        assert b.authors_double.pct == pytest.approx(7.57, abs=1.2)
        assert b.authors_single.pct == pytest.approx(10.52, abs=1.2)
        assert b.authors_double.value < b.authors_single.value
        # same significance class as the paper (borderline, p in (0.01, 0.3))
        assert 0.005 < b.authors_test.p_value < 0.35

    def test_lead_contrast(self, ds):
        b = blind_report(ds)
        assert b.lead_single.value > 1.5 * b.lead_double.value
        assert not b.lead_test.significant()  # paper: p = 0.197

    def test_last_authors(self, ds):
        far = far_report(ds)
        assert far.last_overall.pct == pytest.approx(8.4, abs=1.5)
        assert not far.last_vs_all.significant()  # paper: p = 0.395

    def test_pc_stats(self, ds):
        pc = pc_report(ds)
        assert pc.memberships.pct == pytest.approx(18.46, abs=1.5)
        assert pc.by_conference["SC"].pct == pytest.approx(29.6, abs=2.5)
        assert pc.excluding_sc.pct == pytest.approx(16.1, abs=1.5)
        assert len(pc.zero_women_chair_confs) == 4

    def test_visible_roles(self, ds):
        vis = visible_report(ds)
        assert len(vis.zero_women_confs["keynote"]) == 4
        assert set(vis.zero_women_confs["session_chair"]) == {"HPDC", "HiPC", "HPCC"}
        assert vis.zero_session_chair_seats == 45

    def test_hpc_topic(self, ds):
        h = hpc_topic_report(ds)
        assert h.hpc_papers == 178
        assert h.authors_hpc.pct == pytest.approx(10.1, abs=1.5)
        assert h.authors_hpc.value >= h.authors_all.value


class TestReception:
    def test_fig2_shape(self, ds):
        rep = reception_report(ds)
        # sample sizes near 53 / 435
        assert rep.n_female_lead == pytest.approx(53, abs=8)
        assert rep.n_male_lead == pytest.approx(435, abs=25)
        # the single outlier exists and is excluded
        assert rep.outlier_citations is not None
        assert rep.outlier_citations > 150
        # direction: women's mean (no outlier) below men's, significantly
        assert rep.mean_female_no_outlier < rep.mean_male
        assert rep.welch_no_outlier.statistic < 0
        assert rep.welch_no_outlier.significant()
        # magnitudes in the paper's neighbourhood
        assert rep.mean_male == pytest.approx(10.55, rel=0.15)
        assert rep.mean_female_no_outlier == pytest.approx(7.63, rel=0.25)
        # i10 ordering and rough levels
        assert 100 * rep.i10_female == pytest.approx(23, abs=8)
        assert 100 * rep.i10_male == pytest.approx(38, abs=6)


class TestDemographics:
    def test_coverage_split(self, full_result):
        cov = full_result.coverage
        assert 100 * cov["manual"] == pytest.approx(95.18, abs=0.8)
        assert 100 * cov["genderize"] == pytest.approx(1.79, abs=0.8)
        assert 100 * cov["none"] == pytest.approx(3.03, abs=0.8)

    def test_gs_coverage_and_correlation(self, ds):
        exp = experience_report(ds)
        assert 100 * exp.gs_coverage_known_gender == pytest.approx(69.65, abs=4)
        assert exp.gs_s2_correlation.r == pytest.approx(0.334, abs=0.15)
        assert exp.gs_s2_correlation.p_value < 0.0001

    def test_experience_bands(self, ds):
        exp = experience_report(ds)
        assert 100 * exp.novice_female_authors == pytest.approx(44.8, abs=6)
        assert 100 * exp.novice_male_authors == pytest.approx(36.4, abs=6)
        assert exp.novice_female_authors > exp.novice_male_authors

    def test_table2_shape(self, ds):
        geo = geography_report(ds)
        top = geo.countries[:10]
        assert top[0].country_code == "US"
        assert top[0].total == pytest.approx(1408, rel=0.15)
        assert top[0].women.pct == pytest.approx(15.38, abs=2)
        big = [c for c in geo.countries if c.total >= 100]
        mid = [c for c in geo.countries if c.total >= 30]
        us = next(c for c in mid if c.country_code == "US")
        jp = next(c for c in mid if c.country_code == "JP")
        # US highest among major countries, Japan lowest (paper §5.2);
        # among mid-size countries small denominators can wobble ±2 pts.
        assert us.women.value == max(c.women.value for c in big)
        assert us.women.value >= max(c.women.value for c in mid) - 0.02
        assert jp.women.value <= min(c.women.value for c in mid) + 0.01
        assert jp.women.pct < 4

    def test_table3_shape(self, ds):
        geo = geography_report(ds)
        na = next(r for r in geo.regions if r.region == "Northern America")
        assert na.authors.pct == pytest.approx(9.78, abs=1.5)
        assert na.pc.pct == pytest.approx(24.47, abs=2.5)
        assert na.authors.n == pytest.approx(930, rel=0.2)

    def test_sector(self, ds):
        sec = sector_report(ds)
        assert sec.sector_shares["EDU"] == pytest.approx(0.728, abs=0.05)
        assert sec.sector_shares["GOV"] == pytest.approx(0.186, abs=0.06)
        assert sec.sector_shares["COM"] == pytest.approx(0.086, abs=0.04)
        assert not sec.pc_test.significant()       # paper: p = 0.77
        assert not sec.author_test.significant()   # paper: p = 0.443


class TestSensitivity:
    def test_no_observation_flips(self, ds):
        rep = sensitivity_report(ds)
        assert rep.all_stable
        assert rep.unknowns / ds.researchers.num_rows == pytest.approx(
            0.0303, abs=0.008
        )


class TestOverallAgreement:
    def test_comparison_rows_mostly_close(self, full_result):
        rows = compare_headlines(full_result)
        # At least 80% of headline statistics within 25% relative error
        # (chi-square statistics are noisy; rates are tight).
        close = [r for r in rows if r.rel_error < 0.25]
        assert len(close) / len(rows) >= 0.7, sorted(
            ((r.statistic, round(r.rel_error, 2)) for r in rows),
            key=lambda t: -t[1],
        )[:8]
