"""Tests for the mini-HTML builder and parser."""

import pytest
from hypothesis import given, strategies as st

from repro.harvest.html import HtmlElement, el, parse_html, render
from repro.harvest.html import HtmlParseError


class TestBuilderAndRender:
    def test_render_basic(self):
        node = el("div", el("span", "hi"), cls="row")
        assert render(node) == '<div class="row"><span>hi</span></div>'

    def test_escaping(self):
        node = el("p", 'a < b & "c"')
        text = render(node)
        assert "&lt;" in text and "&amp;" in text and "&quot;" in text

    def test_void_tag(self):
        assert render(el("br")) == "<br/>"


class TestParse:
    def test_roundtrip(self):
        node = el(
            "html",
            el("body", el("ul", el("li", "Ann Smith", cls="pc-member"))),
        )
        tree = parse_html(render(node))
        found = tree.find_all(tag="li", cls="pc-member")
        assert [n.text() for n in found] == ["Ann Smith"]

    def test_entities_unescaped(self):
        tree = parse_html("<p>a &amp; b &lt;c&gt;</p>")
        assert tree.find(tag="p").text() == "a & b <c>"

    def test_comments_dropped(self):
        tree = parse_html("<div><!-- secret --><span>x</span></div>")
        assert tree.text() == "x"

    def test_attributes(self):
        tree = parse_html('<a href="http://x" class="big link">go</a>')
        a = tree.find(tag="a")
        assert a.attrs["href"] == "http://x"
        assert a.classes == {"big", "link"}

    def test_self_closing(self):
        tree = parse_html("<div><br/><span>y</span></div>")
        assert tree.find(tag="span").text() == "y"

    def test_unclosed_tags_tolerated(self):
        tree = parse_html("<div><span>dangling")
        assert tree.find(tag="span").text() == "dangling"

    def test_unmatched_close_raises(self):
        with pytest.raises(HtmlParseError):
            parse_html("<div>x</span></div>")

    def test_whitespace_normalized_in_text(self):
        tree = parse_html("<p>  a\n\n  b  </p>")
        assert tree.find(tag="p").text() == "a b"

    def test_unknown_tags_pass_through(self):
        tree = parse_html("<widget><li class='x'>no-quote-attr</li></widget>")
        # single-quoted attrs are not in our subset; attr is ignored but
        # the element still parses
        assert tree.find(tag="widget") is not None

    def test_nested_same_tag(self):
        tree = parse_html("<div><div>inner</div> outer</div>")
        outer = tree.find(tag="div")
        assert outer.text() == "inner outer"
        assert len(outer.find_all(tag="div")) == 2  # self + nested

    def test_find_first_none(self):
        tree = parse_html("<p>x</p>")
        assert tree.find(cls="nope") is None

    @given(st.text(alphabet=st.characters(blacklist_characters="<>&\"", categories=["Lu", "Ll", "Nd", "Zs"]), min_size=0, max_size=40))
    def test_text_roundtrip(self, s):
        tree = parse_html(render(el("p", s)))
        import re

        expected = re.sub(r"\s+", " ", s).strip()
        assert tree.find(tag="p").text() == expected
