"""Scraping the generated conference websites back into records.

This is the inverse of :mod:`repro.harvest.sitegen` and the entry point
of the analysis pipeline: from here on, nothing reads the ground truth.
The scraper is defensive — missing sections yield empty lists, malformed
numbers yield ``None`` — because the round-trip tests inject exactly
those malformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harvest.html import HtmlParseError, parse_html
from repro.harvest.proceedings import ProceedingsRecord
from repro.harvest.sitegen import ConferenceSite
from repro.names.parsing import clean_person_name

__all__ = ["HarvestedRole", "HarvestedPaper", "HarvestedConference", "scrape_site"]


@dataclass(frozen=True)
class HarvestedRole:
    """A name observed in a role on a conference page."""

    full_name: str
    role: str  # sitegen's css class: pc-chair, pc-member, keynote, ...


@dataclass(frozen=True)
class HarvestedPaper:
    """A paper as observed on the accepted-papers page + proceedings."""

    paper_id: str
    title: str
    author_names: tuple[str, ...]
    author_emails: tuple[str | None, ...]  # aligned with author_names
    citations_36mo: int | None
    is_hpc_topic: bool | None


@dataclass
class HarvestedConference:
    """Everything scraped for one conference edition."""

    conference: str
    year: int
    date: str | None = None
    country: str | None = None
    accepted: int | None = None
    submitted: int | None = None
    review_policy: str | None = None
    diversity_policies: tuple[str, ...] = ()
    roles: list[HarvestedRole] = field(default_factory=list)
    papers: list[HarvestedPaper] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float | None:
        # None means *missing data*; a real zero-accept edition is 0.0.
        if self.accepted is None or self.submitted is None or self.submitted == 0:
            return None
        return self.accepted / self.submitted


_ROLE_CLASSES = ("pc-chair", "pc-member", "keynote", "panelist", "session-chair")


def _maybe_int(text: str | None) -> int | None:
    if text is None:
        return None
    try:
        return int(text.strip())
    except ValueError:
        return None


def _first_text(root, cls: str) -> str | None:
    node = root.find(cls=cls)
    return node.text() if node is not None else None


def _safe_parse(page: str):
    """Parse a page; a syntactically broken one reads as empty."""
    try:
        return parse_html(page)
    except HtmlParseError:
        return parse_html("")


def _email_between_brackets(line: str) -> str | None:
    """The address in a ``Name <addr>`` contact line, if well-formed.

    Scanned headers routinely lose characters; a line with ``<`` but no
    closing ``>`` (or with the brackets inverted) is malformed and
    yields no email rather than an exception.
    """
    lo = line.find("<")
    hi = line.rfind(">")
    if lo == -1 or hi == -1 or hi <= lo:
        return None
    return line[lo + 1 : hi]


def scrape_site(
    site: ConferenceSite, proceedings: list[ProceedingsRecord] | None = None
) -> HarvestedConference:
    """Parse a conference site (+ optional proceedings) into records."""
    out = HarvestedConference(conference=site.conference, year=site.year)

    # ---- index ------------------------------------------------------------
    index = _safe_parse(site.index_html)
    out.date = _first_text(index, "conf-date")
    out.country = _first_text(index, "conf-country")
    out.accepted = _maybe_int(_first_text(index, "conf-accepted"))
    out.submitted = _maybe_int(_first_text(index, "conf-submitted"))
    out.review_policy = _first_text(index, "conf-review-policy")
    out.diversity_policies = tuple(
        n.text() for n in index.find_all(cls="diversity-policy")
    )

    # ---- roles --------------------------------------------------------------
    for page in (site.committees_html, site.program_html):
        root = _safe_parse(page)
        for cls in _ROLE_CLASSES:
            for node in root.find_all(tag="li", cls=cls):
                # scrub NBSP/zero-width junk *before* the name becomes a
                # record: identity resolution keys on this string, and one
                # invisible character would split a person in two
                name = clean_person_name(node.text())
                if name:
                    out.roles.append(HarvestedRole(full_name=name, role=cls))

    # ---- papers ----------------------------------------------------------------
    papers_root = _safe_parse(site.papers_html)
    by_id = {r.paper_id: r for r in (proceedings or [])}
    for node in papers_root.find_all(cls="paper"):
        title = _first_text(node, "paper-title") or ""
        pid = _first_text(node, "paper-id") or ""
        # raw spellings match the proceedings header lines; the cleaned
        # spellings are what downstream identity resolution keys on
        raw_names = tuple(a.text() for a in node.find_all(tag="li", cls="paper-author"))
        names = tuple(clean_person_name(n) for n in raw_names)
        rec = by_id.get(pid)
        emails: tuple[str | None, ...]
        if rec is not None:
            found = {}
            for line in rec.fulltext_header.splitlines():
                # contact lines carry an address; skipping the rest
                # avoids cleaning every header line per author
                if "<" not in line or "@" not in line:
                    continue
                email = _email_between_brackets(line)
                if email is None:
                    continue
                # clean once per line, not once per line x author
                cleaned = clean_person_name(line)
                for raw, name in zip(raw_names, names):
                    if line.startswith(raw) or cleaned.startswith(name):
                        found[name] = email
            emails = tuple(found.get(n) for n in names)
        else:
            emails = tuple(None for _ in names)
        out.papers.append(
            HarvestedPaper(
                paper_id=pid,
                title=title,
                author_names=names,
                author_emails=emails,
                citations_36mo=rec.citations_36mo if rec else None,
                is_hpc_topic=rec.is_hpc_topic if rec else None,
            )
        )
    return out
