"""The active observability context and its propagation.

One :class:`ObsContext` carries the tracer, the metrics registry, and
(optionally) the stage profiler for a run.  The rest of the codebase
never threads it through call signatures; instrumented layers ask for
the *current* context::

    from repro.obs.context import current

    ctx = current()
    if ctx.enabled:
        ctx.metrics.inc("tabular.join.calls")

``current()`` returns a shared :data:`NULL` context unless a run
activated one with :func:`use`, so an un-instrumented process pays a
module-global read and an attribute check per hook — measured well
under the <5% overhead budget (``benchmarks/bench_obs.py``).

The context is a plain module global, not a contextvar: the pipeline is
single-threaded per process, and ``parallel_map`` worker processes start
fresh at :data:`NULL` — the parallel layer installs a per-task capture
context (:func:`capture`) whose spans and metrics are shipped back and
merged in input order, which is what keeps observability output
independent of worker count.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import Event, EventLog, NullEventLog
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.profile import StageProfiler
from repro.obs.span import NullTracer, Span, Tracer, derive_span_seed

__all__ = ["ObsContext", "ObsEnvelope", "NULL", "current", "use", "capture"]


class _NullProfiledStage:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_STAGE = _NullProfiledStage()


class ObsContext:
    """Tracer + metrics + event log + optional profiler for one run."""

    enabled = True

    def __init__(
        self,
        seed: int = 0,
        profile: bool = False,
        profile_top: int = 12,
    ) -> None:
        self.seed = int(seed)
        self.tracer = Tracer(seed=seed)
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        self.profiler = StageProfiler(top_n=profile_top) if profile else None
        # every span open/close mirrors into the unified event log, so
        # the stream interleaves stage boundaries with what happened
        # inside them (faults, contract dispositions, cache outcomes)
        self.tracer.on_open = self._span_opened
        self.tracer.on_close = self._span_closed

    def _span_opened(self, span: Span) -> None:
        self.events.emit("span.open", span.name, span_id=span.span_id)

    def _span_closed(self, span: Span) -> None:
        self.events.emit("span.close", span.name, span_id=span.span_id)

    # thin conveniences so call sites stay one-liners
    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def annotate(self, **attrs: Any) -> None:
        self.tracer.annotate(**attrs)

    def event(self, type: str, name: str = "", **attrs: Any):
        return self.events.emit(type, name, **attrs)

    def profiled(self, name: str):
        return self.profiler.stage(name) if self.profiler is not None else _NULL_STAGE


class _NullObsContext:
    """Disabled context: every operation is a no-op (shared singleton)."""

    enabled = False
    seed = 0
    profiler = None

    def __init__(self) -> None:
        self.tracer = NullTracer()
        self.metrics = NullMetrics()
        self.events = NullEventLog()

    def span(self, name: str, **attrs: Any):
        return NullTracer._NULL_CM

    def annotate(self, **attrs: Any) -> None:
        return None

    def event(self, type: str, name: str = "", **attrs: Any) -> None:
        return None

    def profiled(self, name: str):
        return _NULL_STAGE


NULL = _NullObsContext()

_current: Any = NULL


def current() -> Any:
    """The active :class:`ObsContext`, or :data:`NULL` when none is."""
    return _current


@contextmanager
def use(ctx: ObsContext | None):
    """Install ``ctx`` as the current context for the dynamic extent."""
    global _current
    prev = _current
    _current = ctx if ctx is not None else NULL
    try:
        yield _current
    finally:
        _current = prev


# ------------------------------------------------- worker-task propagation


@dataclass
class ObsEnvelope:
    """A worker task's result plus its captured observability artifacts."""

    result: Any
    spans: list[Span] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    events: list[Event] = field(default_factory=list)


@contextmanager
def capture(seed: int, path: tuple[str, ...], index: int):
    """Run one work item under a fresh deterministic capture context.

    The child tracer is seeded from ``(seed, *path, index)`` — the item's
    *position*, not the worker that ran it — so span IDs are identical
    across worker counts.  Used by ``parallel_map``; also usable directly
    by any code that fans work out on its own.
    """
    ctx = ObsContext(seed=derive_span_seed(seed, *path, index))
    with use(ctx):
        yield ctx
