"""Benchmark PIPE: end-to-end pipeline throughput, serial vs parallel.

Times the full scrape→link→enrich→infer→dataset path over a fresh
pre-built world (world construction itself is benchmarked separately so
pipeline numbers are not confounded by generation cost).
"""

import pytest

from repro.pipeline import RunConfig, run_pipeline
from repro.synth import WorldConfig, build_world
from repro.util.parallel import ParallelConfig


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(seed=7, scale=1.0, include_timeline=False))


def test_world_build(benchmark):
    """World generation at full scale (population + papers + careers)."""
    out = benchmark(build_world, WorldConfig(seed=7, scale=1.0, include_timeline=False))
    benchmark.extra_info["people"] = len(out.registry.people)
    benchmark.extra_info["papers"] = len(out.registry.papers)


def test_pipeline_serial(benchmark, world):
    """Full pipeline, serial ingest."""
    res = benchmark(run_pipeline, world=world)
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_pipeline_parallel(benchmark, world):
    """Full pipeline, 4-worker ingest (deterministic)."""
    cfg = RunConfig(parallel=ParallelConfig(workers=4, min_items_per_worker=1))
    res = benchmark(run_pipeline, cfg, world=world)
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_inference_stage(benchmark, world):
    """The gender-inference cascade alone (manual + genderize)."""
    from repro.harvest.webindex import build_name_keyed_evidence
    from repro.pipeline import infer_genders, ingest_world, link_identities

    linked = link_identities(ingest_world(world))
    avail, truth = build_name_keyed_evidence(
        world.registry, world.evidence_availability, world.true_genders
    )
    out = benchmark(infer_genders, linked, avail, truth, world.seed)
    benchmark.extra_info["manual_pct"] = round(100 * out.coverage["manual"], 2)
