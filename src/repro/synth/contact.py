"""Email addresses and affiliation strings for synthetic researchers.

These are the *raw materials* the pipeline's country/sector resolution
works from, so they are generated to be classifiable by the same
hand-coded rules the paper used: EDU affiliations mention a university,
GOV a national lab or agency, COM a company; emails carry country-code
TLDs (or .edu/.gov for the US, or uninformative .com for industry).
"""

from __future__ import annotations

import numpy as np

from repro.geo.countries import country_by_code
from repro.names.parsing import name_key

__all__ = ["make_email", "make_affiliation"]

_CITY_STEMS = (
    "River", "Lake", "North", "South", "East", "West", "New", "Old",
    "Grand", "Central", "Harbor", "Summit", "Valley", "Forest", "Stone",
)
_CITY_SUFFIX = ("ton", "ville", "burg", "field", "ford", "port", "dale", "mont")

_COMPANIES = (
    "IBM", "Intel", "Microsoft", "Google", "Amazon", "NVIDIA", "AMD",
    "Huawei", "Cray", "Fujitsu", "NEC", "Samsung", "Oracle",
)
_US_LABS = (
    "Oak Ridge National Laboratory", "Argonne National Laboratory",
    "Lawrence Livermore National Laboratory", "Los Alamos National Laboratory",
    "Sandia National Laboratories", "Pacific Northwest National Laboratory",
    "Brookhaven National Laboratory", "NASA Ames Research Center",
)
_INTL_GOV = (
    "National Supercomputing Center", "National Research Laboratory",
    "National Institute of Advanced Computing", "Government Research Centre",
)


def _city(rng: np.random.Generator) -> str:
    return (
        _CITY_STEMS[int(rng.integers(len(_CITY_STEMS)))]
        + _CITY_SUFFIX[int(rng.integers(len(_CITY_SUFFIX)))]
    )


def make_affiliation(
    sector: str, country_code: str | None, rng: np.random.Generator
) -> str:
    """A classifiable affiliation string for a researcher.

    Researchers without a resolvable country get strings with no country
    hint (the pipeline must then mark them unknown), matching the paper's
    unresolved cases.
    """
    country = country_by_code(country_code).name if country_code else None
    if sector == "COM":
        company = _COMPANIES[int(rng.integers(len(_COMPANIES)))]
        return f"{company} Research" + (f", {country}" if country else "")
    if sector == "GOV":
        if country_code == "US":
            return _US_LABS[int(rng.integers(len(_US_LABS)))] + ", USA"
        lab = _INTL_GOV[int(rng.integers(len(_INTL_GOV)))]
        return f"{lab}" + (f", {country}" if country else "")
    # EDU
    uni = f"University of {_city(rng)}"
    return uni + (f", {country}" if country else "")


def make_email(
    full_name: str,
    sector: str,
    country_code: str | None,
    rng: np.random.Generator,
) -> str:
    """An email address consistent with sector and country.

    US academics get ``.edu``, US labs ``.gov``; other countries use
    their ccTLD (with an ``ac``/``gov`` second level); industry gets a
    generic ``.com`` that deliberately carries no country signal.
    """
    local = name_key(full_name).replace(" ", ".")
    n = int(rng.integers(1, 99))
    if sector == "COM":
        company = _COMPANIES[int(rng.integers(len(_COMPANIES)))].lower()
        return f"{local}@{company}{n}.com"
    country = country_by_code(country_code) if country_code else None
    if sector == "GOV":
        if country_code == "US":
            return f"{local}@lab{n}.gov"
        if country:
            return f"{local}@nlab{n}.gov.{country.tld}"
        return f"{local}@research{n}.org"
    # EDU
    if country_code == "US":
        return f"{local}@univ{n}.edu"
    if country:
        return f"{local}@univ{n}.ac.{country.tld}"
    return f"{local}@institute{n}.org"
