"""Benchmarks for the §6 extensions and methodology ablations."""

import numpy as np
import pytest

from repro.collab import build_coauthorship_graph, collaboration_report
from repro.gender.resolver import ResolverPolicy
from repro.harvest.webindex import build_name_keyed_evidence
from repro.pipeline import infer_genders, link_identities, ingest_world, run_pipeline
from repro.synth import WorldConfig, build_world
from repro.universe import systems_universe, universe_report


def test_collaboration_analysis(benchmark, result):
    """§6 extension: coauthorship-graph construction + metrics."""
    rep = benchmark(collaboration_report, result.dataset)
    benchmark.extra_info["assortativity"] = round(rep.assortativity, 4)
    benchmark.extra_info["largest_component"] = rep.largest_component
    assert abs(rep.assortativity) < 0.15  # null-model world mixes randomly


def test_coauthorship_graph_build(benchmark, result):
    """Graph construction alone (quadratic in team size)."""
    g = benchmark(build_coauthorship_graph, result.dataset)
    benchmark.extra_info["nodes"] = g.number_of_nodes()
    benchmark.extra_info["edges"] = g.number_of_edges()


@pytest.fixture(scope="module")
def universe_world():
    targets = systems_universe(56)
    world = build_world(
        WorldConfig(seed=56, scale=0.35, include_timeline=False), targets=targets
    )
    return world, targets


def test_universe_pipeline(benchmark, universe_world):
    """§6 extension: full pipeline over the 56-conference universe."""
    world, targets = universe_world
    res = benchmark(run_pipeline, world=world)
    rep = universe_report(res.dataset, targets)
    order = [r.field for r in rep.rows]
    benchmark.extra_info["hpc_rank_from_bottom"] = len(order) - order.index("HPC")
    assert len(rep.rows) == 9


def test_inference_threshold_ablation(benchmark, result):
    """Ablation: genderize confidence threshold vs coverage.

    The paper accepts genderize at ≥0.70.  Sweep thresholds and record
    the unassigned rate at each — the tradeoff the paper's choice sits on.
    """
    world = result.world
    linked = result.linked
    avail, truth = build_name_keyed_evidence(
        world.registry, world.evidence_availability, world.true_genders
    )

    def sweep():
        rates = {}
        for threshold in (0.55, 0.70, 0.85, 0.95):
            out = infer_genders(
                linked, avail, truth, seed=world.seed,
                policy=ResolverPolicy(genderize_threshold=threshold),
            )
            rates[threshold] = out.coverage["none"]
        return rates

    rates = benchmark(sweep)
    benchmark.extra_info["unassigned_by_threshold"] = {
        str(k): round(100 * v, 2) for k, v in rates.items()
    }
    # stricter thresholds leave (weakly) more people unassigned
    values = [rates[t] for t in sorted(rates)]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
