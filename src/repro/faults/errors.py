"""Exception taxonomy of the fault-injection layer.

Every injected failure is a :class:`FaultError`; the concrete subclasses
mirror the failure modes real harvesting pipelines see from
conference-website scrapes, genderize.io, and the scholar services:
transient connection errors, timeouts, rate limiting (HTTP 429), and
syntactically broken payloads.  Two further classes belong to the
resilience machinery itself: :class:`CircuitOpenError` (a fast-fail from
an open circuit breaker) and :class:`RetryExhaustedError` (the retry
budget ran out).

Nothing in this module ever escapes :func:`repro.pipeline.run_pipeline`:
callers catch :class:`FaultError` at the service boundary and convert it
into a :class:`~repro.faults.degradation.LossRecord`.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "TransientServiceError",
    "ServiceTimeout",
    "RateLimitError",
    "MalformedPayloadError",
    "CircuitOpenError",
    "RetryExhaustedError",
]


class FaultError(Exception):
    """Base class of every injected or resilience-layer failure."""

    def __init__(self, service: str, key: tuple, detail: str = "") -> None:
        self.service = service
        self.key = key
        self.detail = detail
        super().__init__(f"{service}{list(key)}: {detail or type(self).__name__}")

    @property
    def reason(self) -> str:
        """Short machine-readable tag used in loss records."""
        return _REASONS.get(type(self), "fault")


class TransientServiceError(FaultError):
    """A one-off failure (connection reset, HTTP 5xx)."""


class ServiceTimeout(FaultError):
    """The service did not answer within the (virtual) deadline."""


class RateLimitError(FaultError):
    """The service throttled the client (HTTP 429)."""


class MalformedPayloadError(FaultError):
    """The response arrived but failed client-side validation."""


class CircuitOpenError(FaultError):
    """The per-service circuit breaker is open; the call was not made."""


class RetryExhaustedError(FaultError):
    """All retry attempts failed; the work item is degraded, not fatal."""

    def __init__(
        self, service: str, key: tuple, attempts: int, last: FaultError | None = None
    ) -> None:
        self.attempts = attempts
        self.last = last
        detail = f"gave up after {attempts} attempts"
        if last is not None:
            detail += f" (last: {last.reason})"
        super().__init__(service, key, detail)


_REASONS: dict[type, str] = {
    TransientServiceError: "transient",
    ServiceTimeout: "timeout",
    RateLimitError: "rate-limit",
    MalformedPayloadError: "malformed",
    CircuitOpenError: "circuit-open",
    RetryExhaustedError: "exhausted-retries",
}
