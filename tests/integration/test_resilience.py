"""End-to-end resilience contract of the pipeline.

Three guarantees, asserted at pipeline level:

1. ``FaultConfig(rate=0.0)`` is bit-identical to the fault-free path —
   the resilience plumbing itself changes nothing;
2. a fixed fault seed produces an *equal* ``DegradedCoverage`` (and
   dataset) at any worker count;
3. no fault configuration — up to every call failing — can raise out of
   ``run_pipeline``; everything lost is accounted for.

``REPRO_FAULT_RATE`` (see ``make faults``) tunes the rate used by the
worker-invariance test so CI can sweep harsher regimes.
"""

import os

import pytest

from repro.faults import FaultConfig
from repro.pipeline import run_pipeline
from repro.util.parallel import ParallelConfig

ENV_RATE = float(os.environ.get("REPRO_FAULT_RATE", "0.25"))

TABLES = (
    "researchers",
    "author_positions",
    "conf_authors",
    "papers",
    "conferences",
    "role_slots",
)


def _datasets_equal(a, b) -> bool:
    return all(getattr(a, t).equals(getattr(b, t)) for t in TABLES)


@pytest.mark.faults
class TestRateZeroIdentity:
    def test_bit_identical_to_fault_free_run(self, small_world, small_result):
        resilient = run_pipeline(world=small_world, faults=FaultConfig(rate=0.0))
        assert _datasets_equal(resilient.dataset, small_result.dataset)
        assert resilient.coverage == small_result.coverage
        dc = resilient.degraded
        assert dc is not None and not dc.is_degraded
        assert dc.harvested_editions == dc.total_editions
        assert dc.retries == 0 and dc.virtual_time == 0.0


@pytest.mark.faults
class TestWorkerInvariance:
    def test_degraded_coverage_identical_across_worker_counts(self, small_world):
        faults = FaultConfig(rate=ENV_RATE, seed=5)
        serial = run_pipeline(world=small_world, faults=faults)
        four = run_pipeline(
            world=small_world,
            faults=faults,
            parallel=ParallelConfig(workers=4, min_items_per_worker=1),
        )
        assert serial.degraded == four.degraded
        assert _datasets_equal(serial.dataset, four.dataset)
        assert serial.coverage == four.coverage

    def test_same_seed_reproduces_same_losses(self, small_world):
        faults = FaultConfig(rate=ENV_RATE, seed=5)
        a = run_pipeline(world=small_world, faults=faults)
        b = run_pipeline(world=small_world, faults=faults)
        assert a.degraded == b.degraded

    def test_different_fault_seed_differs(self, small_world):
        a = run_pipeline(world=small_world, faults=FaultConfig(rate=0.5, seed=5))
        b = run_pipeline(world=small_world, faults=FaultConfig(rate=0.5, seed=6))
        assert a.degraded != b.degraded


@pytest.mark.faults
class TestNothingEscapes:
    @pytest.mark.parametrize("rate", [0.5, 1.0])
    def test_run_completes_under_heavy_faults(self, small_world, rate):
        result = run_pipeline(
            world=small_world,
            faults=FaultConfig(rate=rate, seed=3),
        )
        dc = result.degraded
        # every edition is either in the dataset or in the loss ledger
        assert dc.harvested_editions + len(dc.dropped_editions) == dc.total_editions
        if rate == 1.0:
            assert dc.is_degraded

    def test_total_loss_still_yields_a_result(self, small_world):
        # transient-only at rate 1: every harvest exhausts, nothing survives
        result = run_pipeline(
            world=small_world,
            faults=FaultConfig(rate=1.0, seed=3, weights=(1.0, 0.0, 0.0, 0.0)),
        )
        dc = result.degraded
        assert dc.harvested_editions == 0
        assert len(dc.dropped_editions) == dc.total_editions
        assert result.dataset.conferences.num_rows == 0

    def test_degradation_is_visible_in_the_report(self, small_world):
        from repro.report.textreport import full_report

        result = run_pipeline(
            world=small_world, faults=FaultConfig(rate=ENV_RATE, seed=5)
        )
        text = full_report(result)
        assert "Degraded coverage" in text
