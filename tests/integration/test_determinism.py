"""End-to-end determinism and pipeline-fidelity tests."""

import numpy as np
import pytest

from repro.gender.model import Gender
from repro.pipeline import run_pipeline
from repro.synth import WorldConfig
from repro.util.parallel import ParallelConfig


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        cfg = WorldConfig(seed=77, scale=0.15, include_timeline=False)
        a = run_pipeline(cfg)
        b = run_pipeline(cfg)
        assert a.dataset.researchers.equals(b.dataset.researchers)
        assert a.dataset.papers.equals(b.dataset.papers)

    def test_parallel_ingest_same_dataset(self):
        cfg = WorldConfig(seed=78, scale=0.15, include_timeline=False)
        serial = run_pipeline(cfg)
        par = run_pipeline(
            cfg, parallel=ParallelConfig(workers=3, min_items_per_worker=1)
        )
        assert serial.dataset.researchers.equals(par.dataset.researchers)
        assert serial.dataset.author_positions.equals(par.dataset.author_positions)


class TestPipelineFidelity:
    """The pipeline must recover the ground truth it cannot see."""

    def test_inferred_genders_match_truth(self, small_result):
        world = small_result.world
        linked = small_result.linked
        truth_by_name = {}
        collided = set()
        from repro.names.parsing import name_key

        for p in world.registry.people.values():
            k = name_key(p.full_name)
            if k in truth_by_name:
                collided.add(k)
            truth_by_name[k] = p.true_gender
        correct = wrong = 0
        for rid, a in small_result.dataset.assignments.items():
            rec = linked.researchers[rid]
            if rec.name_key in collided or not a.known:
                continue
            if a.gender is truth_by_name[rec.name_key]:
                correct += 1
            else:
                wrong += 1
        assert correct / (correct + wrong) > 0.98

    def test_country_resolution_mostly_correct(self, small_result):
        from repro.names.parsing import name_key

        world = small_result.world
        truth = {}
        for p in world.registry.people.values():
            truth[name_key(p.full_name)] = p.country_code or None
        r = small_result.dataset.researchers
        checked = correct = 0
        for rid, name, country in zip(
            r["researcher_id"], r["full_name"], r["country"]
        ):
            true_c = truth.get(name_key(name))
            if true_c and country is not None:
                checked += 1
                correct += int(country == true_c)
        assert checked > 100
        assert correct / checked > 0.97

    def test_unknown_gender_people_have_no_evidence(self, small_result):
        from repro.gender.webevidence import EvidenceKind
        from repro.names.parsing import name_key

        world = small_result.world
        ev_by_name = {}
        for pid, p in world.registry.people.items():
            ev_by_name.setdefault(name_key(p.full_name), []).append(
                world.evidence_availability[pid]
            )
        linked = small_result.linked
        for rid, a in small_result.dataset.assignments.items():
            if a.known:
                continue
            evs = ev_by_name.get(linked.researchers[rid].name_key, [])
            # unknown researchers either collided (multiple bearers) or had
            # no usable page
            assert len(evs) != 1 or evs[0] is EvidenceKind.NONE


class TestGroundTruthIsolation:
    def test_dataset_contains_no_truth_fields(self, small_result):
        cols = set(small_result.dataset.researchers.columns)
        assert "true_gender" not in cols
        assert "web_evidence" not in cols
