"""The paper's analyses, one module per section.

Every function takes an :class:`~repro.pipeline.dataset.AnalysisDataset`
(the pipeline's output) and returns a typed result object carrying the
quantities the paper prints plus the statistical tests it reports.

- :mod:`repro.analysis.far`         — §3.1 author gender ratios.
- :mod:`repro.analysis.blind`       — §3.1 double- vs single-blind.
- :mod:`repro.analysis.pc`          — §3.2 program committees.
- :mod:`repro.analysis.visible`     — §3.3 keynotes/panels/session chairs.
- :mod:`repro.analysis.hpctopic`    — §4.1 the HPC-only paper subset.
- :mod:`repro.analysis.reception`   — §4.2 citations by lead gender.
- :mod:`repro.analysis.experience`  — §5.1 publications/h-index/bands.
- :mod:`repro.analysis.geography`   — §5.2 countries and regions.
- :mod:`repro.analysis.sector`      — §5.3 COM/EDU/GOV.
- :mod:`repro.analysis.casestudy`   — §3.4 SC/ISC 2016-2020.
- :mod:`repro.analysis.sensitivity` — §2 unknown-gender flipping.
"""

from repro.analysis.common import women_share, share_of
from repro.analysis.far import far_report, FarReport, ConferenceFar
from repro.analysis.blind import blind_report, BlindReport
from repro.analysis.pc import pc_report, PcReport
from repro.analysis.visible import visible_report, VisibleReport
from repro.analysis.hpctopic import hpc_topic_report, HpcTopicReport
from repro.analysis.reception import reception_report, ReceptionReport
from repro.analysis.experience import experience_report, ExperienceReport
from repro.analysis.geography import geography_report, GeographyReport
from repro.analysis.sector import sector_report, SectorReport
from repro.analysis.casestudy import casestudy_report, CaseStudyReport
from repro.analysis.sensitivity import sensitivity_report, SensitivityReport
from repro.analysis.policies import policy_report, PolicyReport

__all__ = [
    "women_share",
    "share_of",
    "far_report",
    "FarReport",
    "ConferenceFar",
    "blind_report",
    "BlindReport",
    "pc_report",
    "PcReport",
    "visible_report",
    "VisibleReport",
    "hpc_topic_report",
    "HpcTopicReport",
    "reception_report",
    "ReceptionReport",
    "experience_report",
    "ExperienceReport",
    "geography_report",
    "GeographyReport",
    "sector_report",
    "SectorReport",
    "casestudy_report",
    "CaseStudyReport",
    "sensitivity_report",
    "SensitivityReport",
    "policy_report",
    "PolicyReport",
]
