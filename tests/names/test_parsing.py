"""Tests for name parsing and keys."""

import pytest
from hypothesis import given, strategies as st

from repro.names import forename_of, name_key, normalize_name
from repro.names.corpora import cluster_for_country


class TestNormalize:
    def test_collapses_whitespace(self):
        assert normalize_name("  Ann   B.  Smith ") == "Ann B. Smith"


class TestForename:
    def test_simple(self):
        assert forename_of("Rhody D. Kaner") == "Rhody"

    def test_leading_initial_skipped(self):
        assert forename_of("E. Frachtenberg") is None

    def test_initial_without_dot_skipped(self):
        assert forename_of("J Smith") is None

    def test_middle_initial_ok(self):
        assert forename_of("Mary K. Jones") == "Mary"

    def test_single_token(self):
        assert forename_of("Madonna") == "Madonna"


class TestNameKey:
    def test_accent_folding(self):
        assert name_key("Jürgen Müller") == "jurgen muller"

    def test_case_and_space(self):
        assert name_key("  ANN   SMITH ") == name_key("Ann Smith")

    def test_distinct_names_distinct_keys(self):
        assert name_key("Ann Smith") != name_key("Ann Smythe")

    @given(st.text(alphabet=st.characters(categories=["Lu", "Ll"]), min_size=1, max_size=30))
    def test_idempotent(self, s):
        assert name_key(s) == name_key(name_key(s))


class TestClusterMapping:
    @pytest.mark.parametrize(
        "code,cluster",
        [
            ("US", "western"),
            ("DE", "western"),
            ("BR", "western"),
            ("CN", "east_asian"),
            ("JP", "east_asian"),
            ("SG", "east_asian"),
            ("IN", "south_asian"),
            ("TR", "middle_eastern"),
            ("EG", "middle_eastern"),
            ("AU", "western"),
        ],
    )
    def test_known_mappings(self, code, cluster):
        assert cluster_for_country(code) == cluster

    def test_unknown_defaults_western(self):
        assert cluster_for_country("ZZ") == "western"
