"""Legacy shim so `pip install -e .` works without the `wheel` package.

The environment has setuptools 65 but no `wheel`; a PEP 517 editable
install would need bdist_wheel.  With setup.py present and no
[build-system] table, pip falls back to the legacy develop install.
"""
from setuptools import setup

setup()
