"""Tests for the deterministic RNG stream tree."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngStream, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_path_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_no_concat_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_int_str_components_distinct(self):
        # int 1 and str "1" normalize identically by design (stable keys);
        # the separator guarantees structure, not type, distinguishes.
        assert derive_seed(0, 1) == derive_seed(0, "1")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_in_64bit_range(self, root, part):
        s = derive_seed(root, part)
        assert 0 <= s < 2**64


class TestRngStream:
    def test_child_generators_reproducible(self):
        a = RngStream(42).child("population").generator().random(5)
        b = RngStream(42).child("population").generator().random(5)
        assert np.array_equal(a, b)

    def test_children_independent(self):
        a = RngStream(42).child("x").generator().random(100)
        b = RngStream(42).child("y").generator().random(100)
        assert not np.array_equal(a, b)

    def test_nested_paths(self):
        s = RngStream(7)
        assert s.child("a").child("b") == s.child("a", "b")

    def test_hash_and_eq(self):
        assert hash(RngStream(1, ("a",))) == hash(RngStream(1, ("a",)))
        assert RngStream(1) != RngStream(2)

    def test_spawn_rng_matches_stream(self):
        g1 = spawn_rng(9, "k")
        g2 = RngStream(9).child("k").generator()
        assert g1.random() == g2.random()

    def test_integers_helper(self):
        v = RngStream(3).child("z").integers(0, 10, size=4)
        assert v.shape == (4,)
        assert ((0 <= v) & (v < 10)).all()
