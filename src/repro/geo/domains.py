"""Email-address → country resolution.

"Many authors also included their email address in the full text of the
paper, from which we inferred more timely affiliation and country
information" (§2).  Country-code TLDs resolve directly; the generic TLDs
(.com/.org/.net) yield no country, and .edu/.gov/.mil imply the United
States (they are US-administered TLDs).
"""

from __future__ import annotations

from repro.geo.countries import Country, country_by_tld

__all__ = ["split_email", "email_country", "academic_tlds"]

_US_TLDS = frozenset({"edu", "gov", "mil"})
_GENERIC_TLDS = frozenset({"com", "org", "net", "io", "ai", "info"})


def academic_tlds() -> frozenset[str]:
    """US-administered TLDs that imply a US affiliation."""
    return _US_TLDS


def split_email(address: str) -> tuple[str, str] | None:
    """Split ``local@domain`` into (local, domain); None if malformed."""
    addr = address.strip()
    if addr.count("@") != 1:
        return None
    local, domain = addr.split("@")
    if not local or "." not in domain:
        return None
    return local, domain.lower()


def email_country(address: str) -> Country | None:
    """Infer the country from an email address, or None.

    Resolution order: country-code TLD, then US-administered TLDs
    (.edu/.gov/.mil → US).  Generic TLDs resolve to None — the pipeline
    then falls back to the scholar-profile affiliation.
    """
    parts = split_email(address)
    if parts is None:
        return None
    _, domain = parts
    tld = domain.rsplit(".", 1)[-1]
    if tld in _GENERIC_TLDS:
        return None
    if tld in _US_TLDS:
        return country_by_tld("us")
    # .ac.uk style: the country TLD is still the last label
    return country_by_tld(tld)
