"""§4.1 — the strictly-HPC paper subset.

178 of 518 papers were tagged HPC; 10.1% of their known-gender authors
were women vs 9.9% overall (χ² = 4.656, p = 0.031 in the paper), and
11.05% of HPC papers with known first-author gender had a woman lead vs
10.86% overall (χ² = 0.0547, p = 0.8151 — nonsignificant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq, women_share
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result
from repro.stats.proportions import Proportion, proportion_diff

__all__ = ["HpcTopicReport", "hpc_topic_report"]


@dataclass(frozen=True)
class HpcTopicReport:
    """§4.1's quantities."""

    hpc_papers: int
    all_papers: int
    authors_hpc: Proportion          # women among HPC-paper author positions
    authors_all: Proportion
    authors_test: Chi2Result
    lead_hpc: Proportion
    lead_all: Proportion
    lead_test: Chi2Result


def hpc_topic_report(ds: AnalysisDataset) -> HpcTopicReport:
    """Compute §4.1 over an analysis dataset."""
    papers = ds.papers
    flag_col = papers.col("is_hpc")
    # the flag column is bool when complete and float-with-NaN when some
    # proceedings records were missing; a missing flag is *unknown*, not
    # False (and certainly not True, which bool(NaN) would make it)
    known = ~flag_col.is_missing()
    truthy = np.zeros(len(flag_col), dtype=bool)
    truthy[known] = flag_col.values[known].astype(bool)
    hpc_flags = {
        pid: bool(t)
        for pid, t, k in zip(papers["paper_id"], truthy, known)
        if k
    }
    hpc_count = int(truthy.sum())

    positions = ds.author_positions
    in_hpc = np.array(
        [hpc_flags.get(pid, False) for pid in positions["paper_id"]], dtype=bool
    )
    authors_hpc = women_share(positions.filter(in_hpc))
    authors_all = women_share(positions)

    firsts = papers.filter(truthy)
    lead_hpc = women_share(firsts, "first_gender")
    lead_all = women_share(papers, "first_gender")

    return HpcTopicReport(
        hpc_papers=hpc_count,
        all_papers=papers.num_rows,
        authors_hpc=authors_hpc,
        authors_all=authors_all,
        authors_test=proportion_diff(authors_hpc, authors_all),
        lead_hpc=lead_hpc,
        lead_all=lead_all,
        lead_test=proportion_diff(lead_hpc, lead_all),
    )
