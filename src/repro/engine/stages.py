"""The pipeline's stages declared as engine nodes.

Each function here is one :class:`~repro.engine.node.StageNode` body:
module-level (picklable, so independent nodes can run in
``parallel_map`` workers), taking the run's
:class:`PipelineParams` plus the named input artifacts, returning a
dict of named output artifacts.

The bodies mirror the legacy ``repro.pipeline.runner._run_stages``
semantics exactly — same fault sessions, same contract hand-offs — but
with two structural differences the DAG makes possible:

- **enrichment and gender inference are independent branches**: both
  consume the linked identities, neither consumes the other, so they
  share a scheduler generation and may run concurrently;
- **contract validation runs once per materialization**: each stage
  validates its own output as part of producing the artifact, so a
  cache hit serves already-validated data without re-validating, and
  the ``finalize`` node folds the per-stage contract sessions back into
  the single run-level report the legacy path builds incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.contracts.audit import ContractReport, run_integrity_audit
from repro.contracts.schema import (
    ContractViolationError,
    ValidationMode,
    Violation,
)
from repro.contracts.validators import (
    ContractSession,
    validate_assignments,
    validate_enrichment,
    validate_harvest,
    validate_linked,
)
from repro.engine.dag import StageGraph
from repro.engine.node import StageNode
from repro.faults.degradation import DegradedCoverage, FaultStats, LossRecord
from repro.faults.plan import FaultConfig
from repro.faults.session import FaultSession
from repro.gender.resolver import ResolverPolicy
from repro.harvest.webindex import build_name_keyed_evidence
from repro.obs.context import current as _obs
from repro.pipeline.checkpoint import CheckpointStore
from repro.pipeline.dataset import AnalysisDataset
from repro.pipeline.enrich import enrich_researchers
from repro.pipeline.infer import infer_genders
from repro.pipeline.ingest import IngestReport, ingest_world, ingest_world_resilient
from repro.pipeline.link import link_identities
from repro.synth.config import WorldConfig
from repro.synth.world import build_world
from repro.util.parallel import ParallelConfig

__all__ = ["PipelineParams", "FaultPart", "build_graph"]


@dataclass(frozen=True)
class PipelineParams:
    """Everything a stage body may need; small, frozen, picklable.

    Only the *result-affecting* members (world config, policy, faults,
    validation) enter node fingerprints — execution policy (parallel,
    checkpoint directory, resume) must never change a cache key.
    """

    world_config: WorldConfig | None = None
    policy: ResolverPolicy | None = None
    faults: FaultConfig | None = None
    validation: ValidationMode | None = None
    checkpoint_dir: str | None = None
    resume: bool = False
    parallel: ParallelConfig | None = None

    @property
    def resilient(self) -> bool:
        return self.faults is not None or self.checkpoint_dir is not None

    def contract_session(self) -> ContractSession | None:
        if self.validation is None:
            return None
        return ContractSession(mode=self.validation)


@dataclass(frozen=True)
class FaultPart:
    """A stage's fault accounting, detached from its (stateful) session."""

    losses: tuple[LossRecord, ...] = ()
    stats: FaultStats = field(default_factory=FaultStats)

    @classmethod
    def of(cls, session: FaultSession | None) -> "FaultPart | None":
        if session is None:
            return None
        return cls(losses=tuple(session.losses), stats=session.snapshot)


def _checkpoint_fingerprint(world, faults: FaultConfig | None) -> dict:
    # identical to the legacy runner's fingerprint so a checkpoint
    # directory is interchangeable between the two execution paths
    return {
        "seed": world.seed,
        "scale": world.config.scale,
        "faults": repr(faults) if faults is not None else "none",
    }


# --------------------------------------------------------------- stage bodies


def stage_world(params: PipelineParams, inputs: dict) -> dict:
    return {"world": build_world(params.world_config)}


def stage_ingest(params: PipelineParams, inputs: dict) -> dict:
    world = inputs["world"]
    session = params.contract_session()
    report: IngestReport | None = None
    if not params.resilient:
        harvested = ingest_world(world, parallel=params.parallel)
    else:
        checkpoint = None
        if params.checkpoint_dir is not None:
            checkpoint = CheckpointStore(
                params.checkpoint_dir, _checkpoint_fingerprint(world, params.faults)
            )
            checkpoint.begin(resume=params.resume)
        report = ingest_world_resilient(
            world,
            parallel=params.parallel,
            faults=params.faults,
            checkpoint=checkpoint,
            resume=params.resume,
        )
        harvested = report.conferences
        if report.resumed:
            ctx = _obs()
            ctx.annotate(
                resumed_from_checkpoint=True, resumed_editions=len(report.resumed)
            )
            ctx.metrics.inc("checkpoint.stages_resumed")
            ctx.event("checkpoint.resume", "ingest", editions=len(report.resumed))
    if session is not None:
        malformed = ()
        if report is not None:
            malformed = tuple(
                sorted(
                    {
                        r.key
                        for r in report.losses
                        if r.stage == "harvest" and r.reason.startswith("malformed:")
                    }
                )
            )
        harvested = validate_harvest(harvested, session, malformed)
    return {
        "harvested": harvested,
        "ingest_report": report,
        "contracts_ingest": session,
    }


def stage_link(params: PipelineParams, inputs: dict) -> dict:
    linked = link_identities(inputs["harvested"])
    session = params.contract_session()
    if session is not None:
        linked = validate_linked(linked, session)
    return {"linked": linked, "contracts_link": session}


def stage_enrich(params: PipelineParams, inputs: dict) -> dict:
    world, linked = inputs["world"], inputs["linked"]
    fault_session = FaultSession(params.faults) if params.resilient else None
    enrichment = enrich_researchers(
        linked, world.gs_store, world.s2_store, session=fault_session
    )
    session = params.contract_session()
    if session is not None:
        enrichment = validate_enrichment(enrichment, session)
    return {
        "enrichment": enrichment,
        "enrich_faults": FaultPart.of(fault_session),
        "contracts_enrich": session,
    }


def stage_infer(params: PipelineParams, inputs: dict) -> dict:
    world, linked = inputs["world"], inputs["linked"]
    fault_session = FaultSession(params.faults) if params.resilient else None
    name_evidence, name_truth = build_name_keyed_evidence(
        world.registry, world.evidence_availability, world.true_genders
    )
    inference = infer_genders(
        linked,
        name_evidence,
        name_truth,
        seed=world.seed,
        policy=params.policy,
        photo_error_rate=world.config.photo_error_rate,
        session=fault_session,
    )
    session = params.contract_session()
    if session is not None:
        assignments = validate_assignments(inference.assignments, session)
        if assignments != inference.assignments:
            inference = inference.with_assignments(assignments)
    return {
        "inference": inference,
        "infer_faults": FaultPart.of(fault_session),
        "contracts_infer": session,
    }


def stage_dataset(params: PipelineParams, inputs: dict) -> dict:
    dataset = AnalysisDataset.build(
        inputs["linked"], inputs["enrichment"], inputs["inference"].assignments
    )
    return {"dataset": dataset}


def _merge_sessions(
    mode: ValidationMode, parts: list[ContractSession | None]
) -> ContractSession:
    """Fold per-stage contract sessions into the run-level one.

    Stage order is fixed (ingest, link, enrich, infer), so the merged
    quarantine store lists entries in exactly the order the legacy
    shared-session path would have appended them.
    """
    merged = ContractSession(mode=mode)
    for part in parts:
        if part is None:
            continue
        merged.store.entries.extend(part.store.entries)
        for entity, n in part.baselines.items():
            merged.baselines[entity] = merged.baselines.get(entity, 0) + n
        merged.papers_scraped.update(part.papers_scraped)
        if part.malformed_editions:
            merged.malformed_editions = tuple(part.malformed_editions)
    return merged


def stage_finalize(params: PipelineParams, inputs: dict) -> dict:
    """Degraded-coverage assembly + the end-of-run integrity audit."""
    report: IngestReport | None = inputs["ingest_report"]
    degraded = None
    if params.resilient and report is not None:
        stats = FaultStats()
        stats.merge(report.stats)
        losses = list(report.losses)
        for part in (inputs["enrich_faults"], inputs["infer_faults"]):
            if part is not None:
                stats.merge(part.stats)
                losses.extend(part.losses)
        degraded = DegradedCoverage.from_parts(
            total_editions=report.total_editions,
            harvested_editions=len(report.conferences),
            losses=losses,
            stats=stats,
            resumed_editions=report.resumed,
        )

    contracts = None
    mode = params.validation
    if mode is not None:
        session = _merge_sessions(
            mode,
            [
                inputs["contracts_ingest"],
                inputs["contracts_link"],
                inputs["contracts_enrich"],
                inputs["contracts_infer"],
            ],
        )
        audit = run_integrity_audit(
            inputs["dataset"],
            inputs["inference"],
            session,
            degraded=degraded,
            proceedings_counts=(
                report.proceedings_counts if report is not None else None
            ),
            enrichment_rows=len(inputs["enrichment"]),
        )
        contracts = ContractReport(
            mode=mode.value, quarantine=session.store, audit=audit
        )
        if mode is ValidationMode.STRICT and not audit.ok:
            raise ContractViolationError(
                "audit",
                "run",
                "integrity",
                [
                    Violation(
                        contract="audit",
                        code=f"audit.{c.name}",
                        field=None,
                        message=f"expected {c.expected}, got {c.actual}",
                    )
                    for c in audit.failures
                ],
            )
    return {"degraded": degraded, "contracts": contracts}


# --------------------------------------------------------------- the graph


def build_graph(params: PipelineParams, prebuilt_world: bool = False) -> StageGraph:
    """Declare the pipeline DAG for one run.

    With a prebuilt world the ``world`` artifact is a seed injected by
    the caller; otherwise a ``world`` node builds it (and caches it —
    the single biggest warm-run win).
    """
    fp = StageNode.freeze_params
    graph = StageGraph(seed_artifacts=("world",) if prebuilt_world else ())
    if not prebuilt_world:
        graph.add(
            StageNode(
                "world",
                stage_world,
                inputs=(),
                outputs=("world",),
                params=fp({"config": params.world_config}),
            )
        )
    graph.add(
        StageNode(
            "ingest",
            stage_ingest,
            inputs=("world",),
            outputs=("harvested", "ingest_report", "contracts_ingest"),
            params=fp({"faults": params.faults, "validation": params.validation}),
        )
    )
    graph.add(
        StageNode(
            "link",
            stage_link,
            inputs=("harvested",),
            outputs=("linked", "contracts_link"),
            params=fp({"validation": params.validation}),
        )
    )
    graph.add(
        StageNode(
            "enrich",
            stage_enrich,
            inputs=("world", "linked"),
            outputs=("enrichment", "enrich_faults", "contracts_enrich"),
            params=fp({"faults": params.faults, "validation": params.validation}),
        )
    )
    graph.add(
        StageNode(
            "infer",
            stage_infer,
            inputs=("world", "linked"),
            outputs=("inference", "infer_faults", "contracts_infer"),
            params=fp(
                {
                    "policy": params.policy,
                    "faults": params.faults,
                    "validation": params.validation,
                }
            ),
        )
    )
    graph.add(
        StageNode(
            "dataset",
            stage_dataset,
            inputs=("linked", "enrichment", "inference"),
            outputs=("dataset",),
            params=fp({}),
        )
    )
    graph.add(
        StageNode(
            "finalize",
            stage_finalize,
            inputs=(
                "dataset",
                "inference",
                "enrichment",
                "ingest_report",
                "enrich_faults",
                "infer_faults",
                "contracts_ingest",
                "contracts_link",
                "contracts_enrich",
                "contracts_infer",
            ),
            outputs=("degraded", "contracts"),
            params=fp({"faults": params.faults, "validation": params.validation}),
        )
    )
    return graph
