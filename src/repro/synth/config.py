"""World-build configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorldConfig"]


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of a synthetic world build.

    Attributes
    ----------
    seed:
        Root seed; every random decision derives from it.
    scale:
        Linear scale factor on all population sizes.  ``1.0`` reproduces
        the paper's sizes exactly; smaller values (e.g. ``0.25``) build
        proportionally smaller worlds for fast tests.  Quota counts are
        rescaled with largest-remainder rounding so that rates are
        preserved as closely as integer arithmetic allows.
    years:
        Editions to synthesize, e.g. ``(2016, 2017, 2018)``.  Empty means
        the paper's single 2017 snapshot.  Multi-year worlds are built
        shard-by-shard via :class:`repro.synth.shards.ShardPlan`.
    venues:
        Number of synthetic venues in a sharded universe (0 means the
        paper's nine HPC conferences).  Venue targets are drawn purely
        from ``(seed, venue index, year)`` so each conference×edition
        shard can be generated independently.
    include_timeline:
        Whether to also build the SC/ISC 2016–2020 mini-editions (§3.4).
    photo_error_rate:
        Error rate of photo-based manual gender judgments.
    email_rate:
        Fraction of authors whose papers include an email address.
    pc_author_overlap:
        Fraction of PC members who are also authors in the dataset.
    """

    seed: int = 2017
    scale: float = 1.0
    years: tuple[int, ...] = ()
    venues: int = 0
    include_timeline: bool = True
    photo_error_rate: float = 0.01
    email_rate: float = 0.8
    pc_author_overlap: float = 0.30

    def __post_init__(self) -> None:
        if not 0.01 <= self.scale <= 1000.0:
            raise ValueError("scale must be in [0.01, 1000]")
        if not 0.0 <= self.photo_error_rate <= 1.0:
            raise ValueError("photo_error_rate must be in [0,1]")
        if not 0.0 <= self.email_rate <= 1.0:
            raise ValueError("email_rate must be in [0,1]")
        if not 0.0 <= self.pc_author_overlap <= 0.9:
            raise ValueError("pc_author_overlap must be in [0, 0.9]")
        if not isinstance(self.years, tuple) or any(
            not isinstance(y, int) for y in self.years
        ):
            raise ValueError("years must be a tuple of ints")
        if len(set(self.years)) != len(self.years):
            raise ValueError("years must not repeat")
        if not isinstance(self.venues, int) or self.venues < 0:
            raise ValueError("venues must be a non-negative int")

    def scaled(self, n: int | float, floor: int = 1) -> int:
        """Scale a population count, keeping at least ``floor`` when n >= 1.

        The floor never exceeds the unscaled count, so tiny scales cannot
        inflate a group beyond its paper-scale size.
        """
        if n <= 0:
            return 0
        lo = max(1, min(int(floor), int(n)))
        return max(lo, int(round(n * self.scale)))
