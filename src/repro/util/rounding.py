"""Integerization of fractional quota tables.

Population calibration (see :mod:`repro.calibration`) produces fractional
cell counts that must be turned into integers whose totals exactly match
prescribed marginals.  The paper's tables are integer counts, so rounding
error directly shows up as a mismatch against published numbers.  We use
largest-remainder (Hamilton) apportionment, the standard controlled-
rounding primitive: floor everything, then distribute the leftover units
to the cells with the largest fractional parts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["largest_remainder", "round_preserving_sum", "proportional_ints"]


def largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Apportion ``total`` integer units proportionally to ``weights``.

    Implements Hamilton's method: each cell receives
    ``floor(total * w_i / sum(w))`` units, and the remaining units go to
    the cells with the largest remainders.  Ties are broken by cell index
    (deterministic).

    Parameters
    ----------
    weights:
        Nonnegative weights; at least one must be positive if
        ``total > 0``.
    total:
        Number of units to distribute (nonnegative).

    Returns
    -------
    numpy.ndarray of int64 with the same shape as ``weights``, summing to
    exactly ``total``.
    """
    w = np.asarray(weights, dtype=float)
    if total < 0:
        raise ValueError(f"total must be nonnegative, got {total}")
    if np.any(w < 0):
        raise ValueError("weights must be nonnegative")
    shape = w.shape
    flat = w.ravel()
    s = flat.sum()
    if total == 0:
        return np.zeros(shape, dtype=np.int64)
    if s <= 0:
        raise ValueError("cannot apportion a positive total over zero weights")
    quota = flat * (total / s)
    base = np.floor(quota).astype(np.int64)
    leftover = int(total - base.sum())
    if leftover > 0:
        remainders = quota - base
        # argsort is stable, so equal remainders resolve by ascending index;
        # we take the largest remainders, preferring lower indices on ties.
        order = np.lexsort((np.arange(flat.size), -remainders))
        base[order[:leftover]] += 1
    return base.reshape(shape)


def round_preserving_sum(values: np.ndarray) -> np.ndarray:
    """Round ``values`` to integers while preserving the (rounded) sum.

    The target total is ``round(sum(values))``; units are assigned by
    largest remainder.  Useful when a fitted fractional table should stay
    as close as possible to itself while becoming integral.
    """
    v = np.asarray(values, dtype=float)
    if np.any(v < 0):
        raise ValueError("values must be nonnegative")
    total = int(np.rint(v.sum()))
    if total == 0:
        return np.zeros(v.shape, dtype=np.int64)
    return largest_remainder(v, total)


def proportional_ints(shares: np.ndarray, total: int) -> np.ndarray:
    """Split ``total`` according to fractional ``shares`` (need not sum to 1).

    Alias of :func:`largest_remainder` with share semantics; kept separate
    for call-site readability.
    """
    return largest_remainder(np.asarray(shares, dtype=float), total)
