"""The concrete contracts for the pipeline's core entities.

One :class:`~repro.contracts.schema.RecordSchema` per record kind that
crosses a stage boundary: conference editions, papers, roles (harvest →
link), researchers (link → enrich/infer), enrichment rows (enrich →
dataset), and gender assignments (infer → dataset).

Contracts encode what the *analysis* relies on, not what the scraper
happens to emit: a paper with no authors cannot contribute authorship
positions, an edition whose accepted count exceeds its submissions
produces an impossible acceptance rate, a confidence outside [0, 1]
breaks the genderize threshold semantics.  Missing data (``None``) is
legitimate throughout — the paper itself reasons over missing values —
so contracts only reject values that are *present and wrong*.
"""

from __future__ import annotations

import math
import re
from functools import lru_cache

from repro.contracts.schema import FieldSpec, Invariant, RecordSchema
from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.names.parsing import name_key as _raw_name_key

# every researcher's key-consistency check and every paper's
# author-key-uniqueness check canonicalize the same few thousand names;
# name_key is pure, so memoize it for the validation hot path
name_key = lru_cache(maxsize=16384)(_raw_name_key)

__all__ = [
    "EDITION_SCHEMA",
    "ROLE_SCHEMA",
    "PAPER_SCHEMA",
    "RESEARCHER_SCHEMA",
    "ENRICHMENT_SCHEMA",
    "ASSIGNMENT_SCHEMA",
]

_ROLE_CLASSES = ("pc-chair", "pc-member", "keynote", "panelist", "session-chair")
_COUNTRY_CODE = re.compile(r"^[A-Z]{2}$")


def _accepted_le_submitted(conf) -> bool:
    if conf.accepted is None or conf.submitted is None:
        return True
    return conf.accepted <= conf.submitted


EDITION_SCHEMA = RecordSchema(
    name="edition",
    fields=(
        FieldSpec("conference", (str,), required=True, nonempty=True),
        FieldSpec("year", (int,), required=True, year=True),
        FieldSpec("date", (str,), nonempty=True),
        FieldSpec("country", (str,), nonempty=True),
        FieldSpec("accepted", (int,), min_value=0),
        FieldSpec("submitted", (int,), min_value=0),
        FieldSpec("review_policy", (str,), choices=("single", "double")),
    ),
    invariants=(
        Invariant(
            "accepted-le-submitted",
            "accepted papers cannot exceed submissions",
            _accepted_le_submitted,
        ),
        Invariant(
            "date-matches-year",
            "the edition date must fall in the edition year",
            lambda c: c.date is None or c.year is None
            or c.date[:4] == str(c.year),
        ),
    ),
)


ROLE_SCHEMA = RecordSchema(
    name="role",
    fields=(
        FieldSpec("full_name", (str,), required=True, nonempty=True),
        FieldSpec("role", (str,), required=True, choices=_ROLE_CLASSES),
    ),
)


def _emails_aligned(paper) -> bool:
    return len(paper.author_emails) == len(paper.author_names)


def _author_names_nonblank(paper) -> bool:
    return all(isinstance(n, str) and n.strip() for n in paper.author_names)


def _author_keys_unique(paper) -> bool:
    keys = [name_key(n) for n in paper.author_names if isinstance(n, str)]
    return len(keys) == len(set(keys))


PAPER_SCHEMA = RecordSchema(
    name="paper",
    fields=(
        FieldSpec("paper_id", (str,), required=True, nonempty=True),
        FieldSpec("title", (str,), required=True, nonempty=True),
        FieldSpec("author_names", (tuple,), required=True, nonempty=True),
        FieldSpec("author_emails", (tuple,), required=True),
        FieldSpec("citations_36mo", (int,), min_value=0),
        FieldSpec("is_hpc_topic", (bool,)),
    ),
    invariants=(
        Invariant(
            "emails-aligned",
            "author_emails must align one-to-one with author_names",
            _emails_aligned,
        ),
        Invariant(
            "authors-nonblank",
            "every author name must be a non-blank string",
            _author_names_nonblank,
        ),
        Invariant(
            "author-keys-unique",
            "the same normalized author key appears twice on one paper",
            _author_keys_unique,
        ),
    ),
)


RESEARCHER_SCHEMA = RecordSchema(
    name="researcher",
    fields=(
        FieldSpec("researcher_id", (str,), required=True, nonempty=True),
        FieldSpec("full_name", (str,), required=True, nonempty=True),
        FieldSpec("name_key", (str,), required=True, nonempty=True),
    ),
    invariants=(
        Invariant(
            "key-consistent",
            "name_key must be the canonical key of full_name",
            lambda r: r.name_key == name_key(r.full_name),
        ),
        Invariant(
            "emails-wellformed",
            "every recorded email must contain exactly one '@'",
            lambda r: all(
                isinstance(e, str) and e.count("@") == 1 for e in r.emails
            ),
        ),
    ),
)


def _h_le_pubs(e) -> bool:
    if e.gs_h_index is None or e.gs_publications is None:
        return True
    return e.gs_h_index <= e.gs_publications


def _i10_le_pubs(e) -> bool:
    if e.gs_i10 is None or e.gs_publications is None:
        return True
    return e.gs_i10 <= e.gs_publications


ENRICHMENT_SCHEMA = RecordSchema(
    name="enrichment",
    fields=(
        FieldSpec("researcher_id", (str,), required=True, nonempty=True),
        FieldSpec("sector", (str,), choices=("COM", "EDU", "GOV")),
        FieldSpec("gs_publications", (int,), min_value=0),
        FieldSpec("gs_h_index", (int,), min_value=0),
        FieldSpec("gs_i10", (int,), min_value=0),
        FieldSpec("gs_citations", (int,), min_value=0),
        FieldSpec("s2_publications", (int,), min_value=0),
    ),
    invariants=(
        Invariant(
            "country-code-shape",
            "country_code must be a two-letter uppercase ISO code",
            lambda e: e.country_code is None
            or bool(_COUNTRY_CODE.match(e.country_code)),
        ),
        Invariant("h-le-pubs", "h-index cannot exceed publications", _h_le_pubs),
        Invariant("i10-le-pubs", "i10 cannot exceed publications", _i10_le_pubs),
    ),
)


def _confidence_lawful(a: GenderAssignment) -> bool:
    if a.method is InferenceMethod.NONE:
        return math.isnan(a.confidence)
    return 0.0 <= a.confidence <= 1.0


ASSIGNMENT_SCHEMA = RecordSchema(
    name="assignment",
    fields=(),
    invariants=(
        Invariant(
            "gender-enum",
            "gender must be a Gender enum member",
            lambda a: isinstance(a.gender, Gender),
        ),
        Invariant(
            "method-enum",
            "method must be an InferenceMethod enum member",
            lambda a: isinstance(a.method, InferenceMethod),
        ),
        Invariant(
            "confidence-lawful",
            "confidence must lie in [0, 1] (NaN only when unassigned)",
            _confidence_lawful,
        ),
        Invariant(
            "unassigned-consistent",
            "method 'none' implies gender UNKNOWN and vice versa",
            lambda a: (a.method is InferenceMethod.NONE)
            == (a.gender is Gender.UNKNOWN),
        ),
    ),
)
