"""End-to-end pipeline driver.

Beyond the happy path, the runner owns the pipeline's resilience
contract:

- pass a :class:`~repro.faults.plan.FaultConfig` and every simulated
  service call (harvest fetches, genderize, Google Scholar, Semantic
  Scholar) runs under the deterministic fault plan — retried with
  virtual-clock backoff, circuit-broken, and, when lost for good,
  recorded in :attr:`PipelineResult.degraded` rather than raised;
- pass ``checkpoint_dir`` and the expensive stages checkpoint as they
  complete (harvest per *edition*, from the workers), so a killed run
  resumes with ``resume=True`` without re-doing finished work;
- pass ``validation`` and every stage hand-off runs under the data
  contracts of :mod:`repro.contracts`: violating records are repaired
  or quarantined (``"repair"``), merely recorded (``"audit"``), or
  fail the run fast (``"strict"``), and an end-of-run integrity audit
  checks that counts are conserved — the result lands in
  :attr:`PipelineResult.contracts`.

With ``faults=None``, no checkpointing, and ``validation=None`` the
runner executes exactly the fault-free code path; with
``FaultConfig(rate=0.0)`` the resilience plumbing is live but injects
nothing, and the output is bit-identical to the fault-free run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.contracts.audit import ContractReport, run_integrity_audit
from repro.contracts.schema import (
    ContractViolationError,
    ValidationMode,
    Violation,
)
from repro.contracts.validators import (
    ContractSession,
    validate_assignments,
    validate_enrichment,
    validate_harvest,
    validate_linked,
)
from repro.faults.degradation import DegradedCoverage, FaultStats
from repro.faults.plan import FaultConfig
from repro.faults.session import FaultSession
from repro.gender.resolver import ResolverPolicy
from repro.harvest.webindex import build_name_keyed_evidence
from repro.obs.context import NULL as _NULL_OBS
from repro.obs.context import ObsContext
from repro.obs.context import use as _obs_use
from repro.pipeline.checkpoint import CheckpointStore
from repro.pipeline.config import RunConfig
from repro.pipeline.dataset import AnalysisDataset
from repro.pipeline.enrich import enrich_researchers
from repro.pipeline.infer import InferenceOutcome, infer_genders
from repro.pipeline.ingest import IngestReport, ingest_world, ingest_world_resilient
from repro.pipeline.link import LinkedData, link_identities
from repro.synth.config import WorldConfig
from repro.synth.world import SyntheticWorld, build_world
from repro.util.parallel import ParallelConfig
from repro.util.timing import StageTimer

__all__ = ["PipelineResult", "run_pipeline", "RunConfig"]


@dataclass
class PipelineResult:
    """Everything a caller might want from a full run."""

    world: SyntheticWorld
    linked: LinkedData
    dataset: AnalysisDataset
    inference: InferenceOutcome
    timer: StageTimer = field(default_factory=StageTimer)
    degraded: DegradedCoverage | None = None
    contracts: ContractReport | None = None
    obs: ObsContext | None = None

    @property
    def coverage(self) -> dict[str, float]:
        return self.inference.coverage


def _fingerprint(world: SyntheticWorld, faults: FaultConfig | None) -> dict:
    return {
        "seed": world.seed,
        "scale": world.config.scale,
        "faults": repr(faults) if faults is not None else "none",
    }


def _validation_mode(
    validation: ValidationMode | str | None,
) -> ValidationMode | None:
    if validation is None:
        return None
    if isinstance(validation, ValidationMode):
        return validation
    return ValidationMode(str(validation))


def run_pipeline(
    config: RunConfig | WorldConfig | None = None,
    world: SyntheticWorld | None = None,
    parallel: ParallelConfig | None = None,
    policy: ResolverPolicy | None = None,
    faults: FaultConfig | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    validation: ValidationMode | str | None = None,
    obs: ObsContext | None = None,
) -> PipelineResult:
    """Build (or reuse) a world and run every pipeline stage.

    The supported calling convention is a single
    :class:`~repro.pipeline.config.RunConfig`::

        run_pipeline(RunConfig(world=WorldConfig(seed=7), validation="repair"))

    optionally with a prebuilt ``world`` (a world is data, not
    configuration, so it stays a separate argument).  When
    ``RunConfig.engine`` is set, the run executes on the stage-DAG
    engine (:mod:`repro.engine`): independent stages run concurrently
    and, with ``engine.cache_dir``, every stage whose content-addressed
    fingerprint hits the artifact cache is served without re-executing
    its body.

    Passing a :class:`~repro.synth.config.WorldConfig` as ``config``,
    or any of the legacy keyword arguments below, still works but emits
    a :class:`DeprecationWarning`; both spellings produce equal
    :class:`PipelineResult`\\ s for the same seed.

    Parameters
    ----------
    config:
        A :class:`RunConfig` (supported), or a world configuration
        (deprecated legacy spelling); ignored when ``world`` is given.
    world:
        A pre-built world (e.g. a shared test fixture).
    parallel:
        Parallel policy for the ingest stage (serial by default).
    policy:
        Gender-resolver policy (paper defaults: manual + genderize@0.70).
    faults:
        Fault-injection configuration.  When given, the run cannot be
        aborted by injected faults: exhausted work items are dropped and
        accounted in :attr:`PipelineResult.degraded`.
    checkpoint_dir:
        Directory for per-stage checkpoints; implies the resilient path.
    resume:
        Reuse matching checkpoints in ``checkpoint_dir`` instead of
        recomputing (raises
        :class:`~repro.pipeline.checkpoint.CheckpointMismatch` if the
        directory belongs to a different run).
    validation:
        Data-contract mode (``"strict"``/``"repair"``/``"audit"`` or a
        :class:`~repro.contracts.schema.ValidationMode`).  ``None``
        disables contracts entirely.  Strict mode raises
        :class:`~repro.contracts.schema.ContractViolationError` at the
        first violating record (or failing audit check); the other modes
        attach a :class:`~repro.contracts.audit.ContractReport` to the
        result.
    obs:
        Observability context (:class:`~repro.obs.context.ObsContext`).
        When given, every stage runs under a trace span, the faults /
        contracts / tabular layers feed its metrics registry, resumed
        stages carry a ``resumed_from_checkpoint`` marker, and (if the
        context was built with ``profile=True``) each stage is profiled
        under cProfile.  ``None`` disables all instrumentation beyond
        the stage timer.
    """
    rc = _coerce_config(
        config,
        parallel=parallel,
        policy=policy,
        faults=faults,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        validation=validation,
        obs=obs,
    )
    if rc.shards is not None:
        raise ValueError(
            "RunConfig.shards selects the sharded pipeline; "
            "call repro.pipeline.sharded.run_sharded (repro.api.run_sharded)"
        )
    octx = rc.obs if rc.obs is not None else _NULL_OBS
    with _obs_use(rc.obs):
        octx.event(
            "run.start",
            "pipeline",
            engine=rc.engine is not None,
            prebuilt_world=world is not None,
        )
        if rc.engine is not None:
            result = _run_engine(octx, rc, world)
            octx.event("run.end", "pipeline", engine=True)
            return result
        result = _run_stages(
            octx,
            config=rc.world,
            world=world,
            parallel=rc.parallel,
            policy=rc.policy,
            faults=rc.faults,
            checkpoint_dir=rc.checkpoint_dir,
            resume=rc.resume,
            validation=rc.validation,
        )
        octx.event("run.end", "pipeline", engine=False)
        return result


def _coerce_config(config, **legacy) -> RunConfig:
    """Fold the deprecated kwargs into a :class:`RunConfig`."""
    passed = {k: v for k, v in legacy.items() if v is not None and v is not False}
    if isinstance(config, RunConfig):
        if passed:
            warnings.warn(
                "passing run_pipeline keyword arguments alongside a RunConfig "
                "is deprecated; set them on the RunConfig instead",
                DeprecationWarning,
                stacklevel=3,
            )
            config = config.with_overrides(**passed)
        return config
    if config is not None and not isinstance(config, WorldConfig):
        raise TypeError(
            f"config must be a RunConfig or WorldConfig, not {type(config).__name__}"
        )
    if config is not None or passed:
        warnings.warn(
            "run_pipeline(WorldConfig, parallel=..., faults=..., ...) is "
            "deprecated; pass run_pipeline(RunConfig(...)) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return RunConfig(world=config, **legacy)


def _run_engine(octx, rc: RunConfig, world: SyntheticWorld | None) -> PipelineResult:
    """Execute the run on the stage-DAG engine (:mod:`repro.engine`)."""
    # imported lazily: repro.engine.stages imports the stage modules of
    # this package, so a top-level import here would be circular
    from repro.engine import (
        IncompleteRunError,
        PipelineParams,
        build_graph,
        run_dag,
        world_fingerprint,
    )

    timer = StageTimer(tracer=octx.tracer if octx.enabled else None)
    params = PipelineParams(
        world_config=rc.world,
        policy=rc.policy,
        faults=rc.faults,
        validation=rc.validation_mode(),
        checkpoint_dir=rc.checkpoint_dir,
        resume=rc.resume,
        parallel=rc.parallel,
    )
    graph = build_graph(params, prebuilt_world=world is not None)
    seeds: dict = {}
    seed_digests: dict[str, str] = {}
    if world is not None:
        seeds["world"] = world
        seed_digests["world"] = world_fingerprint(world)
    run = run_dag(
        graph,
        params,
        seeds=seeds,
        seed_digests=seed_digests,
        engine=rc.engine,
        timer=timer,
    )

    # failure isolation kept the DAG alive, but a PipelineResult cannot
    # exist without these artifacts — surface the accounting instead of
    # a bare KeyError
    required = ("world", "linked", "dataset", "inference", "degraded", "contracts")
    missing = [a for a in required if a not in run.artifacts]
    if missing:
        raise IncompleteRunError(run.failed, run.skipped, missing=missing)

    dataset = run["dataset"]
    if octx.enabled:
        m = octx.metrics
        m.set_gauge("pipeline.researchers", dataset.researchers.num_rows)
        m.set_gauge("pipeline.papers", dataset.papers.num_rows)
        m.set_gauge("pipeline.editions", len(run["harvested"]))
        for name, secs in timer.durations.items():
            m.set_gauge(f"time.stage.{name}", secs)
    return PipelineResult(
        world=run["world"],
        linked=run["linked"],
        dataset=dataset,
        inference=run["inference"],
        timer=timer,
        degraded=_merge_engine_accounting(run["degraded"], run),
        contracts=run["contracts"],
        obs=octx if octx.enabled else None,
    )


def _merge_engine_accounting(degraded, run) -> DegradedCoverage | None:
    """Fold ``EngineRun.failed/skipped/retries`` into the coverage report.

    A clean supervised (or unsupervised) run returns ``degraded``
    untouched, so engine-path reports stay equal to legacy-path ones —
    the parity the feature-parity tests assert.
    """
    if run.completed and run.retries == 0:
        return degraded
    base = degraded if degraded is not None else DegradedCoverage()
    return replace(
        base,
        failed_nodes=tuple(sorted(run.failed)),
        skipped_nodes=tuple(sorted(run.skipped)),
        node_retries=run.retries,
        virtual_time=base.virtual_time + run.virtual_time,
    )


def _run_stages(
    octx,
    config: WorldConfig | None,
    world: SyntheticWorld | None,
    parallel: ParallelConfig | None,
    policy: ResolverPolicy | None,
    faults: FaultConfig | None,
    checkpoint_dir: str | None,
    resume: bool,
    validation: ValidationMode | str | None,
) -> PipelineResult:
    timer = StageTimer(tracer=octx.tracer if octx.enabled else None)
    if world is None:
        with timer.stage("build_world"), octx.profiled("build_world"):
            world = build_world(config)

    mode = _validation_mode(validation)
    contracts_session = ContractSession(mode=mode) if mode is not None else None

    resilient = faults is not None or checkpoint_dir is not None
    ingest_report: IngestReport | None = None
    if not resilient:
        with timer.stage("ingest"), octx.profiled("ingest"):
            harvested = ingest_world(world, parallel=parallel)
        enrich_session = infer_session = None
    else:
        checkpoint = None
        if checkpoint_dir is not None:
            checkpoint = CheckpointStore(checkpoint_dir, _fingerprint(world, faults))
            checkpoint.begin(resume=resume)
        with timer.stage("ingest"), octx.profiled("ingest"):
            ingest_report = ingest_world_resilient(
                world,
                parallel=parallel,
                faults=faults,
                checkpoint=checkpoint,
                resume=resume,
            )
            harvested = ingest_report.conferences
            if ingest_report.resumed:
                # the near-zero duration is checkpoint-load time, not a
                # fresh harvest — mark it so reports can say so
                timer.mark_resumed("ingest")
                octx.annotate(
                    resumed_from_checkpoint=True,
                    resumed_editions=len(ingest_report.resumed),
                )
                octx.metrics.inc("checkpoint.stages_resumed")
                octx.event(
                    "checkpoint.resume",
                    "ingest",
                    editions=len(ingest_report.resumed),
                )

    if contracts_session is not None:
        with timer.stage("contracts"), octx.profiled("contracts"):
            malformed = ()
            if ingest_report is not None:
                malformed = tuple(
                    sorted(
                        {
                            r.key
                            for r in ingest_report.losses
                            if r.stage == "harvest"
                            and r.reason.startswith("malformed:")
                        }
                    )
                )
            harvested = validate_harvest(harvested, contracts_session, malformed)

    with timer.stage("link"), octx.profiled("link"):
        linked = link_identities(harvested)
    if contracts_session is not None:
        with timer.stage("contracts"), octx.profiled("contracts"):
            linked = validate_linked(linked, contracts_session)

    if not resilient:
        with timer.stage("enrich"), octx.profiled("enrich"):
            enrichment = enrich_researchers(linked, world.gs_store, world.s2_store)
    else:
        enrich_session = FaultSession(faults)
        with timer.stage("enrich"), octx.profiled("enrich"):
            if checkpoint is not None and resume and checkpoint.has_stage("enrich"):
                enrichment, enrich_losses = checkpoint.load_stage("enrich")
                enrich_session.losses.extend(enrich_losses)
                timer.mark_resumed("enrich")
                octx.annotate(resumed_from_checkpoint=True)
                octx.metrics.inc("checkpoint.stages_resumed")
                octx.event("checkpoint.resume", "enrich")
            else:
                enrichment = enrich_researchers(
                    linked, world.gs_store, world.s2_store, session=enrich_session
                )
                if checkpoint is not None:
                    checkpoint.save_stage(
                        "enrich", (enrichment, list(enrich_session.losses))
                    )
                    octx.event("checkpoint.save", "enrich")
        infer_session = FaultSession(faults)
    if contracts_session is not None:
        with timer.stage("contracts"), octx.profiled("contracts"):
            enrichment = validate_enrichment(enrichment, contracts_session)

    with timer.stage("infer"), octx.profiled("infer"):
        name_evidence, name_truth = build_name_keyed_evidence(
            world.registry, world.evidence_availability, world.true_genders
        )
        inference = infer_genders(
            linked,
            name_evidence,
            name_truth,
            seed=world.seed,
            policy=policy,
            photo_error_rate=world.config.photo_error_rate,
            session=infer_session,
        )
    if contracts_session is not None:
        with timer.stage("contracts"), octx.profiled("contracts"):
            assignments = validate_assignments(
                inference.assignments, contracts_session
            )
            if assignments != inference.assignments:
                inference = inference.with_assignments(assignments)

    with timer.stage("dataset"), octx.profiled("dataset"):
        dataset = AnalysisDataset.build(linked, enrichment, inference.assignments)

    degraded = None
    if resilient:
        degraded = _assemble_degraded(ingest_report, enrich_session, infer_session)

    contracts = None
    if contracts_session is not None:
        with timer.stage("audit"), octx.profiled("audit"):
            audit = run_integrity_audit(
                dataset,
                inference,
                contracts_session,
                degraded=degraded,
                proceedings_counts=(
                    ingest_report.proceedings_counts
                    if ingest_report is not None
                    else None
                ),
                enrichment_rows=len(enrichment),
            )
        contracts = ContractReport(
            mode=mode.value,
            quarantine=contracts_session.store,
            audit=audit,
        )
        if mode is ValidationMode.STRICT and not audit.ok:
            raise ContractViolationError(
                "audit",
                "run",
                "integrity",
                [
                    Violation(
                        contract="audit",
                        code=f"audit.{c.name}",
                        field=None,
                        message=f"expected {c.expected}, got {c.actual}",
                    )
                    for c in audit.failures
                ],
            )

    if octx.enabled:
        m = octx.metrics
        m.set_gauge("pipeline.researchers", dataset.researchers.num_rows)
        m.set_gauge("pipeline.papers", dataset.papers.num_rows)
        m.set_gauge("pipeline.editions", len(harvested))
        # stage wall-times live under the reserved time.* prefix so the
        # determinism comparison can exclude them wholesale
        for name, secs in timer.durations.items():
            m.set_gauge(f"time.stage.{name}", secs)

    return PipelineResult(
        world=world,
        linked=linked,
        dataset=dataset,
        inference=inference,
        timer=timer,
        degraded=degraded,
        contracts=contracts,
        obs=octx if octx.enabled else None,
    )


def _assemble_degraded(
    ingest_report: IngestReport,
    enrich_session: FaultSession,
    infer_session: FaultSession,
) -> DegradedCoverage:
    """Fold the per-stage sessions into one comparable report."""
    stats = FaultStats()
    stats.merge(ingest_report.stats)
    stats.merge(enrich_session.snapshot)
    stats.merge(infer_session.snapshot)
    losses = (
        list(ingest_report.losses)
        + list(enrich_session.losses)
        + list(infer_session.losses)
    )
    return DegradedCoverage.from_parts(
        total_editions=ingest_report.total_editions,
        harvested_editions=len(ingest_report.conferences),
        losses=losses,
        stats=stats,
        resumed_editions=ingest_report.resumed,
    )
