"""Deterministic content fingerprints for engine cache keys.

A node's cache key must be a pure function of *what the node would
compute*: the world/config fingerprint, the node's own declared
parameters, and the fingerprints of its upstream outputs.  Anything
execution-related (worker counts, checkpoint directories, wall-clock)
must stay out, so that a serial run and a 8-worker run address the same
cache entries.

``canonical`` reduces the config objects the pipeline is parameterised
by — dataclasses, enums, dicts, tuples — to a canonical JSON-encodable
structure (sorted keys, type-tagged containers), and ``fingerprint``
hashes that encoding with SHA-256.  Two structurally equal configs
always produce the same hex digest; any field change produces a
different one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any

__all__ = ["canonical", "fingerprint", "world_fingerprint"]

# bump to invalidate every cache entry ever written (format change)
ENGINE_SCHEMA = 1


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-encodable structure.

    Dataclasses become ``{"__dc__": name, "fields": {...}}``, enums
    their ``(type, value)`` pair, mappings sorted pair lists, sets
    sorted element lists.  Unknown objects fall back to ``repr`` —
    acceptable for fingerprinting because every config object in the
    pipeline has a deterministic repr.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips the exact double, unlike str() on old pythons
        return {"__float__": repr(obj)}
    if isinstance(obj, bytes):
        return {"__bytes__": hashlib.sha256(obj).hexdigest()}
    if isinstance(obj, Enum):
        return {"__enum__": [type(obj).__name__, canonical(obj.value)]}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dc__": type(obj).__name__,
            "fields": {f.name: canonical(getattr(obj, f.name)) for f in fields(obj)},
        }
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonical(x), sort_keys=True) for x in obj)}
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                [json.dumps(canonical(k), sort_keys=True), canonical(v)]
                for k, v in obj.items()
            )
        }
    return {"__repr__": repr(obj)}


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    payload = json.dumps(
        [ENGINE_SCHEMA, [canonical(p) for p in parts]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def world_fingerprint(world_or_config: Any) -> str:
    """Fingerprint of a world: its config plus the edition roster.

    Works for both a :class:`~repro.synth.config.WorldConfig` (the world
    that *would* be built) and a prebuilt
    :class:`~repro.synth.world.SyntheticWorld` — a world built from a
    custom conference-target list (``repro.universe``) differs from the
    default build in its edition roster, which the registry records.
    """
    registry = getattr(world_or_config, "registry", None)
    if registry is None:
        return fingerprint("world-config", world_or_config)
    # the full edition records (conference profile, acceptance rate,
    # paper ids), not just (name, year): two universes drawn from
    # different seeds share the roster names but differ in content
    editions = [registry.editions[k] for k in sorted(registry.editions)]
    return fingerprint("world", world_or_config.config, editions)
