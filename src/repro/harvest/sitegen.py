"""Conference website generation from the ground-truth world.

Each conference edition becomes four pages mirroring the structure the
original study scraped:

- ``index.html``      — dates, host country, acceptance statistics,
  review policy, advertised diversity policies;
- ``committees.html`` — PC chairs and PC members (names only, like real
  committee pages);
- ``program.html``    — keynote speakers, panelists, session chairs;
- ``papers.html``     — accepted papers with ordered author lists.

Emails are *not* on the website — they live in the proceedings full text
(:mod:`repro.harvest.proceedings`), exactly as in the paper's
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.confmodel.registry import WorldRegistry
from repro.confmodel.roles import Role
from repro.harvest.html import HtmlElement, el, render

__all__ = ["ConferenceSite", "generate_site"]


@dataclass(frozen=True)
class ConferenceSite:
    """The generated pages of one conference edition (rendered HTML)."""

    conference: str
    year: int
    index_html: str
    committees_html: str
    program_html: str
    papers_html: str


def _page(title: str, *body: HtmlElement) -> str:
    doc = el(
        "html",
        el("head", el("title", title)),
        el("body", el("h1", title), *body),
    )
    return render(doc)


def _name_list(cls: str, names: list[str]) -> HtmlElement:
    return el("ul", *[el("li", n, cls=cls) for n in names], cls=f"{cls}-list")


def generate_site(registry: WorldRegistry, conference: str, year: int) -> ConferenceSite:
    """Render one conference edition's website."""
    key = f"{conference}-{year}"
    edition = registry.editions[key]
    conf = edition.conference

    # ---- index -----------------------------------------------------------
    policies = []
    d = conf.diversity
    if d.diversity_chair:
        policies.append("Diversity & Inclusivity Chair")
    if d.code_of_conduct:
        policies.append("Code of Conduct")
    if d.childcare:
        policies.append("On-site childcare")
    if d.demographic_reporting:
        policies.append("Demographic reporting")
    index = _page(
        f"{conference} {year}",
        el("p", edition.date, cls="conf-date"),
        el("p", conf.country_code, cls="conf-country"),
        el("p", f"{edition.accepted}", cls="conf-accepted"),
        el("p", f"{edition.submitted}", cls="conf-submitted"),
        el("p", conf.review_policy.value, cls="conf-review-policy"),
        el(
            "div",
            *[el("span", p, cls="diversity-policy") for p in policies],
            cls="diversity-policies",
        ),
    )

    # ---- committees --------------------------------------------------------
    def names_for(role: Role) -> list[str]:
        return [
            registry.people[r.person_id].full_name
            for r in registry.roles_of(conference, year, role)
        ]

    committees = _page(
        f"{conference} {year} Committees",
        el("h2", "Program Committee Chairs"),
        _name_list("pc-chair", names_for(Role.PC_CHAIR)),
        el("h2", "Program Committee"),
        _name_list("pc-member", names_for(Role.PC_MEMBER)),
    )

    # ---- program -------------------------------------------------------------
    program = _page(
        f"{conference} {year} Program",
        el("h2", "Keynote Speakers"),
        _name_list("keynote", names_for(Role.KEYNOTE)),
        el("h2", "Panelists"),
        _name_list("panelist", names_for(Role.PANELIST)),
        el("h2", "Session Chairs"),
        _name_list("session-chair", names_for(Role.SESSION_CHAIR)),
    )

    # ---- papers ----------------------------------------------------------------
    items = []
    for paper in registry.papers_of(conference, year):
        authors = [
            registry.people[a.person_id].full_name for a in paper.authorships
        ]
        items.append(
            el(
                "div",
                el("span", paper.title, cls="paper-title"),
                el("span", paper.paper_id, cls="paper-id"),
                el(
                    "ol",
                    *[el("li", n, cls="paper-author") for n in authors],
                    cls="paper-authors",
                ),
                cls="paper",
            )
        )
    papers = _page(f"{conference} {year} Accepted Papers", *items)

    return ConferenceSite(
        conference=conference,
        year=year,
        index_html=index,
        committees_html=committees,
        program_html=program,
        papers_html=papers,
    )
