"""The end-to-end analysis pipeline.

Stages (each a module, composable separately):

1. :mod:`repro.pipeline.ingest`  — generate + scrape every conference
   site (optionally in parallel, deterministically).
2. :mod:`repro.pipeline.link`    — identity resolution: names observed
   across pages/papers become researchers.
3. :mod:`repro.pipeline.enrich`  — Google Scholar / Semantic Scholar
   linking, country and sector resolution.
4. :mod:`repro.pipeline.infer`   — the gender-assignment cascade.
5. :mod:`repro.pipeline.dataset` — the tabular
   :class:`~repro.pipeline.dataset.AnalysisDataset` the analyses read.
6. :mod:`repro.pipeline.runner`  — :func:`run_pipeline` glue.
7. :mod:`repro.pipeline.sharded` — :func:`run_sharded`: the
   conference×edition-sharded streaming pipeline for scaled universes.

Nothing downstream of ingest reads the ground truth: tables and figures
are recomputed from harvested artifacts, so pipeline defects show up as
deviations from the paper, not as silent self-confirmation.
"""

from repro.pipeline.ingest import (
    ingest_world,
    ingest_world_resilient,
    IngestReport,
    HarvestOutcome,
)
from repro.pipeline.link import link_identities, LinkedData, ResearcherRecord
from repro.pipeline.enrich import enrich_researchers, Enrichment
from repro.pipeline.infer import infer_genders, InferenceOutcome
from repro.pipeline.dataset import AnalysisDataset
from repro.pipeline.checkpoint import (
    CheckpointMismatch,
    CheckpointStore,
    CheckpointWriteError,
)
from repro.pipeline.config import EngineConfig, RunConfig
from repro.pipeline.runner import run_pipeline, PipelineResult
from repro.pipeline.sharded import run_sharded, ShardedRunResult, ShardResult

__all__ = [
    "EngineConfig",
    "RunConfig",
    "ingest_world",
    "ingest_world_resilient",
    "IngestReport",
    "HarvestOutcome",
    "link_identities",
    "LinkedData",
    "ResearcherRecord",
    "enrich_researchers",
    "Enrichment",
    "infer_genders",
    "InferenceOutcome",
    "AnalysisDataset",
    "CheckpointStore",
    "CheckpointMismatch",
    "CheckpointWriteError",
    "run_pipeline",
    "PipelineResult",
    "run_sharded",
    "ShardedRunResult",
    "ShardResult",
]
