"""Sharded streaming execution: one engine DAG node per conference×edition.

The monolithic pipeline builds one world, harvests every edition, and
links/enriches/infers over whole in-memory lists — fine at the paper's
~2.5k researchers, hopeless at the ROADMAP's 10⁵–10⁶.  This module
splits the universe into conference×edition *shards*
(:class:`repro.synth.shards.ShardPlan`):

- each shard is generated, harvested, linked, enriched, and
  gender-inferred by an independent :class:`~repro.engine.node.StageNode`
  whose body is a pure function of ``(seed, shard)`` — shards execute in
  parallel and land in the content-addressed artifact cache, so editing
  one edition's targets re-executes exactly that shard;
- a shard's heavyweight intermediates (the synthetic world, harvested
  pages, linked records) die with the node body; only the compact
  per-shard analysis tables flow to the merge;
- the merge folds shards **in plan order** with the concat-free chunked
  builder (:mod:`repro.tabular.chunked`) — one ``np.concatenate`` per
  column — then re-derives the cross-shard researcher identity exactly
  the way :func:`repro.pipeline.link.link_identities` does within a
  shard: same normalized name key ⇒ same researcher.  Merge output is
  byte-identical for any shard-worker count.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace

import numpy as np

from repro.faults.degradation import DegradedCoverage, FaultStats, LossRecord
from repro.faults.plan import FaultConfig
from repro.faults.session import FaultSession
from repro.gender.model import GenderAssignment
from repro.gender.resolver import GenderResolver, ResolverPolicy
from repro.harvest.webindex import build_name_keyed_evidence
from repro.obs.context import NULL as _NULL_OBS
from repro.obs.context import ObsContext
from repro.obs.context import use as _obs_use
from repro.pipeline.config import EngineConfig, RunConfig
from repro.pipeline.dataset import AnalysisDataset
from repro.pipeline.enrich import enrich_researchers
from repro.pipeline.infer import infer_genders
from repro.pipeline.ingest import ingest_world, ingest_world_resilient
from repro.pipeline.link import link_identities
from repro.synth.config import WorldConfig
from repro.synth.shards import ShardPlan, ShardSpec
from repro.tabular import ChunkedTableBuilder, Column, Table
from repro.util.timing import StageTimer

__all__ = ["ShardResult", "ShardedRunResult", "run_sharded", "build_shard_graph"]


# --------------------------------------------------------------------- shards


@dataclass(frozen=True)
class ShardParams:
    """Run-level parameters handed to every shard/merge node body.

    Everything here that affects node output is mirrored into the
    respective node's ``params`` (which enter the cache fingerprint), so
    a cache hit can never serve a stale result.
    """

    config: WorldConfig
    policy: ResolverPolicy | None
    faults: FaultConfig | None
    order: tuple[str, ...]

    @property
    def resilient(self) -> bool:
        return False  # shard nodes own their fault handling internally


@dataclass
class ShardResult:
    """The compact survivable output of one shard node.

    Holds only analysis tables and merge bookkeeping — the shard's
    synthetic world, harvested pages, and linked records are freed when
    the node body returns, which is what bounds peak memory.
    """

    key: str
    conference: str
    year: int
    dataset: AnalysisDataset
    name_keys: tuple[str, ...]          # aligned with dataset.researchers rows
    losses: list[LossRecord] = field(default_factory=list)
    stats: FaultStats | None = None
    total_editions: int = 1
    harvested_editions: int = 1


def stage_shard(spec: ShardSpec, params: ShardParams, inputs: dict) -> dict:
    """Build + harvest + link + enrich + infer one conference×edition.

    Pure in ``(config.seed, spec)``: the world draws from the named rng
    stream ``("shard", conference, year)`` and the population plan comes
    from the shard's own targets with repeat factors of 1.0 (a
    one-edition pool has no cross-conference overlap to discount).
    """
    from repro.synth.population import plan_from_targets
    from repro.synth.world import build_world

    cfg = params.config
    world = build_world(
        cfg,
        targets=[spec.target],
        year=spec.year,
        rng_path=("shard", spec.conference, spec.year),
        population_plan=plan_from_targets(
            [spec.target], author_repeat=1.0, pc_repeat=1.0
        ),
    )

    losses: list[LossRecord] = []
    stats: FaultStats | None = None
    total = harvested_n = 1
    if params.faults is not None:
        report = ingest_world_resilient(world, year=spec.year, faults=params.faults)
        harvested = report.conferences
        losses.extend(report.losses)
        stats = FaultStats()
        stats.merge(report.stats)
        total = report.total_editions
        harvested_n = len(report.conferences)
    else:
        harvested = ingest_world(world, year=spec.year)

    linked = link_identities(harvested)

    enrich_session = FaultSession(params.faults) if params.faults is not None else None
    enrichment = enrich_researchers(
        linked, world.gs_store, world.s2_store, session=enrich_session
    )
    infer_session = FaultSession(params.faults) if params.faults is not None else None
    name_evidence, name_truth = build_name_keyed_evidence(
        world.registry, world.evidence_availability, world.true_genders
    )
    inference = infer_genders(
        linked,
        name_evidence,
        name_truth,
        seed=world.seed,
        policy=params.policy,
        photo_error_rate=cfg.photo_error_rate,
        session=infer_session,
    )
    for session in (enrich_session, infer_session):
        if session is not None:
            losses.extend(session.losses)
            if stats is None:
                stats = FaultStats()
            stats.merge(session.snapshot)

    dataset = AnalysisDataset.build(linked, enrichment, inference.assignments)
    name_keys = tuple(
        linked.researchers[rid].name_key for rid in dataset.researchers["researcher_id"]
    )
    result = ShardResult(
        key=spec.key,
        conference=spec.conference,
        year=spec.year,
        dataset=dataset,
        name_keys=name_keys,
        losses=losses,
        stats=stats,
        total_editions=total,
        harvested_editions=harvested_n,
    )
    return {f"shard:{spec.key}": result}


# ---------------------------------------------------------------------- merge

# researcher demographics re-derived from the merged identity (first
# occurrence in plan order wins, matching link_identities' first-seen
# spelling rule within a shard)
_DEMOGRAPHICS = ("gender", "country", "region", "sector")


@dataclass
class MergedShards:
    """Deterministic fold of all shard results (the ``merged`` artifact)."""

    dataset: AnalysisDataset
    coverage: dict[str, float]
    degraded: DegradedCoverage | None
    shard_keys: tuple[str, ...]


def _promoted_schema(tables: list[Table]) -> list[tuple[str, str]]:
    """Column (name, kind) pairs promoted across shards, order preserved."""
    order = tables[0].columns
    schema = []
    for name in order:
        kinds = {t.col(name).kind for t in tables}
        if len(kinds) == 1:
            kind = kinds.pop()
        else:
            kind = "str" if "str" in kinds else "float"
        schema.append((name, kind))
    return schema


def _replace_columns(base: Table, replacements: dict[str, Column]) -> Table:
    """A table with some columns swapped, order preserved."""
    return Table(
        [replacements.get(name, base.col(name)) for name in base.columns]
    )


def _gid_array(local2gid: dict, values, count: int) -> np.ndarray:
    """Local researcher ids → merged gids; missing ids (None) → -1."""
    return np.fromiter(
        (-1 if r is None else local2gid[r] for r in values),
        dtype=np.int64,
        count=count,
    )


def _take_or_none(pool: np.ndarray, gids: np.ndarray) -> np.ndarray:
    """``pool[gids]`` with ``gids < 0`` mapped to ``None``.

    Single-author papers carry ``last_author=None`` (see
    ``AnalysisDataset.build``); the sentinel keeps that hole intact
    through the merge.
    """
    out = np.empty(len(gids), dtype=object)
    mask = gids >= 0
    out[mask] = pool[gids[mask]]
    out[~mask] = None
    return out


def stage_merge(params: ShardParams, inputs: dict) -> dict:
    """Fold per-shard results into one dataset, in fixed plan order.

    Cross-shard identity is by normalized name key — the same rule (and
    the same known failure mode: distinct same-named researchers merge)
    the paper's linking applies within one harvest.  The first
    occurrence, in plan order, contributes the researcher's demographic
    attributes and gender assignment; later occurrences only extend the
    role flags.  Every per-researcher column in the position/paper/role
    tables is then re-derived from the merged identity, so the output is
    internally consistent and independent of worker count or shard
    completion order.
    """
    shards: list[ShardResult] = [inputs[f"shard:{k}"] for k in params.order]

    gid_of: dict[str, int] = {}
    demo_of = {name: [] for name in _DEMOGRAPHICS}   # per-gid, first occurrence
    author_flag: list[bool] = []
    pc_flag: list[bool] = []
    assignments: dict[str, GenderAssignment] = {}

    res_tables = [s.dataset.researchers for s in shards]
    res_builder = ChunkedTableBuilder(_promoted_schema(res_tables))
    builders: dict[str, ChunkedTableBuilder] = {}
    gid_chunks: dict[str, list[np.ndarray]] = {
        "author_positions": [],
        "conf_authors": [],
        "role_slots": [],
    }
    paper_first_gids: list[np.ndarray] = []
    paper_last_gids: list[np.ndarray] = []
    for attr in ("author_positions", "conf_authors", "papers", "conferences", "role_slots"):
        builders[attr] = ChunkedTableBuilder(
            _promoted_schema([getattr(s.dataset, attr) for s in shards])
        )

    for sh in shards:
        rt = sh.dataset.researchers
        rids = rt["researcher_id"]
        genders = rt["gender"]
        is_author = rt["is_author"]
        is_pc = rt["is_pc"]
        gids = np.empty(len(rids), dtype=np.int64)
        new_rows: list[int] = []
        for i, key in enumerate(sh.name_keys):
            g = gid_of.get(key)
            if g is None:
                g = len(gid_of)
                gid_of[key] = g
                new_rows.append(i)
                for name in _DEMOGRAPHICS:
                    demo_of[name].append(rt[name][i])
                author_flag.append(bool(is_author[i]))
                pc_flag.append(bool(is_pc[i]))
                assignment = sh.dataset.assignments.get(rids[i])
                if assignment is not None:
                    assignments[f"r{g:06d}"] = assignment
            else:
                author_flag[g] = author_flag[g] or bool(is_author[i])
                pc_flag[g] = pc_flag[g] or bool(is_pc[i])
            gids[i] = g
        local2gid = dict(zip(rids, gids))

        if new_rows:
            idx = np.array(new_rows, dtype=np.int64)
            res_builder.append({n: rt.col(n).values[idx] for n in rt.columns})

        for attr in ("author_positions", "conf_authors", "role_slots"):
            tbl = getattr(sh.dataset, attr)
            g = np.fromiter(
                (local2gid[r] for r in tbl["researcher_id"]),
                dtype=np.int64,
                count=tbl.num_rows,
            )
            gid_chunks[attr].append(g)
            builders[attr].append({n: tbl.col(n).values for n in tbl.columns})

        pt = sh.dataset.papers
        paper_first_gids.append(
            _gid_array(local2gid, pt["first_author"], pt.num_rows)
        )
        paper_last_gids.append(
            _gid_array(local2gid, pt["last_author"], pt.num_rows)
        )
        builders["papers"].append({n: pt.col(n).values for n in pt.columns})
        ct = sh.dataset.conferences
        builders["conferences"].append({n: ct.col(n).values for n in ct.columns})

    n = len(gid_of)
    rid_str = np.empty(n, dtype=object)
    rid_str[:] = [f"r{g:06d}" for g in range(n)]
    demo_arr = {}
    for name in _DEMOGRAPHICS:
        arr = np.empty(n, dtype=object)
        arr[:] = demo_of[name]
        demo_arr[name] = arr

    researchers = _replace_columns(
        res_builder.build(),
        {
            "researcher_id": Column("researcher_id", rid_str, kind="str"),
            "is_author": Column("is_author", np.array(author_flag, dtype=bool), kind="bool"),
            "is_pc": Column("is_pc", np.array(pc_flag, dtype=bool), kind="bool"),
        },
    )

    tables: dict[str, Table] = {}
    for attr in ("author_positions", "conf_authors", "role_slots"):
        base = builders[attr].build()
        gid_all = (
            np.concatenate(gid_chunks[attr])
            if gid_chunks[attr]
            else np.empty(0, dtype=np.int64)
        )
        repl = {
            "researcher_id": Column("researcher_id", rid_str[gid_all], kind="str")
        }
        for name in _DEMOGRAPHICS:
            if name in base:
                repl[name] = Column(name, demo_arr[name][gid_all], kind="str")
        tables[attr] = _replace_columns(base, repl)

    papers_base = builders["papers"].build()
    fg = (
        np.concatenate(paper_first_gids)
        if paper_first_gids
        else np.empty(0, dtype=np.int64)
    )
    lg = (
        np.concatenate(paper_last_gids)
        if paper_last_gids
        else np.empty(0, dtype=np.int64)
    )
    papers = _replace_columns(
        papers_base,
        {
            "first_author": Column(
                "first_author", _take_or_none(rid_str, fg), kind="str"
            ),
            "last_author": Column(
                "last_author", _take_or_none(rid_str, lg), kind="str"
            ),
            "first_gender": Column(
                "first_gender", _take_or_none(demo_arr["gender"], fg), kind="str"
            ),
            "last_gender": Column(
                "last_gender", _take_or_none(demo_arr["gender"], lg), kind="str"
            ),
        },
    )

    dataset = AnalysisDataset(
        researchers=researchers,
        author_positions=tables["author_positions"],
        conf_authors=tables["conf_authors"],
        papers=papers,
        conferences=builders["conferences"].build(),
        role_slots=tables["role_slots"],
        assignments=assignments,
    )

    degraded = None
    if params.faults is not None:
        stats = FaultStats()
        losses: list[LossRecord] = []
        for sh in shards:
            if sh.stats is not None:
                stats.merge(sh.stats)
            losses.extend(sh.losses)
        degraded = DegradedCoverage.from_parts(
            total_editions=sum(sh.total_editions for sh in shards),
            harvested_editions=sum(sh.harvested_editions for sh in shards),
            losses=losses,
            stats=stats,
        )

    merged = MergedShards(
        dataset=dataset,
        coverage=GenderResolver.coverage(assignments),
        degraded=degraded,
        shard_keys=tuple(params.order),
    )
    return {"merged": merged}


# ------------------------------------------------------------------ graph/run


def build_shard_graph(plan: ShardPlan, params: ShardParams):
    """Declare the sharded DAG: one node per shard, one merge node.

    Each shard node's cache fingerprint covers its spec (targets
    included), the normalized world config, and the fault/resolver
    policies — everything its body reads — so editing one edition's
    targets invalidates exactly that shard plus the merge.
    """
    from repro.engine import StageGraph, StageNode

    fp = StageNode.freeze_params
    graph = StageGraph()
    for spec in plan:
        name = f"shard:{spec.key}"
        graph.add(
            StageNode(
                name,
                functools.partial(stage_shard, spec),
                inputs=(),
                outputs=(name,),
                params=fp(
                    {
                        "shard": spec,
                        "config": params.config,
                        "faults": params.faults,
                        "policy": params.policy,
                    }
                ),
            )
        )
    graph.add(
        StageNode(
            "merge",
            stage_merge,
            inputs=tuple(f"shard:{k}" for k in plan.keys),
            outputs=("merged",),
            params=fp({"order": params.order, "config": params.config}),
        )
    )
    return graph


@dataclass
class _WorldMeta:
    """Ledger-facing stand-in for a full world (seed + config only)."""

    seed: int
    config: WorldConfig


@dataclass
class ShardedRunResult:
    """Outcome of :func:`run_sharded` (duck-compatible with the ledger)."""

    dataset: AnalysisDataset
    coverage: dict[str, float]
    plan: ShardPlan
    timer: StageTimer
    world: _WorldMeta
    degraded: DegradedCoverage | None = None
    contracts: None = None
    obs: ObsContext | None = None
    shard_cache_hits: int = 0
    executed_shards: int = 0
    merge_cache_hit: bool = False

    @property
    def researchers(self) -> int:
        """Unique researchers in the merged dataset."""
        return self.dataset.researchers.num_rows


def _normalized_world(rc: RunConfig) -> tuple[WorldConfig, WorldConfig]:
    """(effective, per-shard) world configs for a sharded run."""
    wc = rc.world or WorldConfig()
    if rc.shards is not None and wc.venues == 0:
        wc = replace(wc, venues=rc.shards)
    shard_cfg = replace(wc, years=(), venues=0, include_timeline=False)
    return wc, shard_cfg


def run_sharded(
    config: RunConfig | WorldConfig | None = None,
    plan: ShardPlan | None = None,
    **legacy,
) -> ShardedRunResult:
    """Run the sharded streaming pipeline and merge deterministically.

    The supported calling convention mirrors
    :func:`~repro.pipeline.runner.run_pipeline`: a single
    :class:`~repro.pipeline.config.RunConfig`::

        run_sharded(RunConfig(world=WorldConfig(seed=7, scale=4.0,
                                                years=(2016, 2017, 2018),
                                                venues=12)))

    optionally with an explicit ``plan`` (e.g. one edition's targets
    edited via :meth:`~repro.synth.shards.ShardPlan.with_target` — only
    that shard and the merge re-execute against a warm cache).  Passing
    a bare :class:`~repro.synth.config.WorldConfig` or the legacy
    ``run_pipeline`` keyword arguments works through the same
    deprecation shim as ``run_pipeline``.

    Contract validation is not yet shard-aware: ``validation="strict"``
    raises, other modes are ignored.  ``shard_workers`` only changes the
    wall-clock — the merged dataset and its ledger body digest are
    byte-identical for any worker count.
    """
    from repro.engine import IncompleteRunError, run_dag
    from repro.pipeline.runner import _coerce_config

    rc = _coerce_config(config, **legacy)
    mode = rc.validation_mode()
    if mode is not None and mode.value == "strict":
        raise ValueError(
            "sharded runs do not support strict contract validation yet"
        )

    octx = rc.obs if rc.obs is not None else _NULL_OBS
    with _obs_use(rc.obs):
        octx.event("run.start", "sharded", shards=rc.shards or 0)
        timer = StageTimer(tracer=octx.tracer if octx.enabled else None)
        wc, shard_cfg = _normalized_world(rc)
        with timer.stage("plan"):
            if plan is None:
                plan = ShardPlan.from_config(wc)
            params = ShardParams(
                config=shard_cfg,
                policy=rc.policy,
                faults=rc.faults,
                order=plan.keys,
            )
            graph = build_shard_graph(plan, params)

        base = rc.engine or EngineConfig()
        engine = replace(base, workers=rc.shard_workers or base.workers)
        with timer.stage("execute"):
            run = run_dag(graph, params, engine=engine, timer=None)

        if "merged" not in run.artifacts:
            raise IncompleteRunError(run.failed, run.skipped, missing=["merged"])
        merged: MergedShards = run["merged"]

        shard_results = [r for r in run.results if r.node.startswith("shard:")]
        merge_results = [r for r in run.results if r.node == "merge"]
        result = ShardedRunResult(
            dataset=merged.dataset,
            coverage=merged.coverage,
            plan=plan,
            timer=timer,
            world=_WorldMeta(seed=wc.seed, config=wc),
            degraded=merged.degraded,
            contracts=None,
            obs=octx if octx.enabled else None,
            shard_cache_hits=sum(1 for r in shard_results if r.cache_hit),
            executed_shards=sum(
                1 for r in shard_results if not r.cache_hit and r.status == "ok"
            ),
            merge_cache_hit=any(r.cache_hit for r in merge_results),
        )
        if octx.enabled:
            m = octx.metrics
            m.set_gauge("pipeline.researchers", result.researchers)
            m.set_gauge("pipeline.papers", merged.dataset.papers.num_rows)
            m.set_gauge("pipeline.shards", len(plan))
            for name, secs in timer.durations.items():
                m.set_gauge(f"time.stage.{name}", secs)
        octx.event(
            "run.end",
            "sharded",
            shards=len(plan),
            cache_hits=result.shard_cache_hits,
        )
        return result
