"""Repair heuristics for contract-violating records.

Each ``repair_*`` function takes a broken record and returns
``(best_effort_record, tags)`` where ``tags`` names every heuristic that
actually changed something (empty tuple == nothing to do).  Repairs are
deliberately conservative: they fix *representation* problems (mangled
whitespace, swapped fields, out-of-range confidences, duplicated author
keys) and never invent data.  A record the heuristics cannot bring back
into contract stays quarantined.

The heuristics mirror the dirt the original study scrubbed by hand:
scanned proceedings with NBSP-ridden names, conference pages that
transposed accepted/submitted counts, digit-reversed years from OCR, and
author lists where the same person appears twice.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Any

from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.names.parsing import clean_person_name, name_key

if TYPE_CHECKING:  # pipeline imports stay lazy: contracts ↔ pipeline cycle
    from repro.harvest.scrape import HarvestedConference, HarvestedPaper
    from repro.pipeline.enrich import Enrichment
    from repro.pipeline.link import ResearcherRecord

__all__ = [
    "repair_edition",
    "repair_paper",
    "repair_role",
    "repair_researcher",
    "repair_enrichment",
    "repair_assignment",
]

Repair = tuple[Any, tuple[str, ...]]

_YEAR_LO, _YEAR_HI = 1960, 2035


def _unreverse_year(year: int) -> int | None:
    """7102 → 2017: recover a digit-reversed (OCR-swapped) year."""
    flipped = int(str(abs(year))[::-1])
    if _YEAR_LO <= flipped <= _YEAR_HI:
        return flipped
    return None


def repair_edition(conf: HarvestedConference) -> Repair:
    tags: list[str] = []
    changes: dict[str, Any] = {}

    if conf.year is not None and not _YEAR_LO <= conf.year <= _YEAR_HI:
        flipped = _unreverse_year(conf.year)
        if flipped is not None:
            changes["year"] = flipped
            tags.append("unreversed-year")

    if (
        conf.accepted is not None
        and conf.submitted is not None
        and conf.accepted > conf.submitted
    ):
        # the two counts sit in adjacent template slots; a swap is the
        # overwhelmingly likely explanation for accepted > submitted
        changes["accepted"] = conf.submitted
        changes["submitted"] = conf.accepted
        tags.append("swapped-accept-counts")

    if conf.conference is not None:
        cleaned = clean_person_name(conf.conference)
        if cleaned != conf.conference and cleaned:
            changes["conference"] = cleaned
            tags.append("cleaned-conference-name")

    if not tags:
        return conf, ()
    return dataclasses.replace(conf, **changes), tuple(tags)


def repair_role(role) -> Repair:
    cleaned = clean_person_name(role.full_name or "")
    if cleaned and cleaned != role.full_name:
        return dataclasses.replace(role, full_name=cleaned), ("cleaned-name",)
    return role, ()


def repair_paper(paper: HarvestedPaper) -> Repair:
    tags: list[str] = []
    names = list(paper.author_names)
    emails = list(paper.author_emails)

    if len(emails) != len(names):
        # keep the prefix that is aligned; pad the remainder with None
        emails = emails[: len(names)] + [None] * max(0, len(names) - len(emails))
        tags.append("realigned-emails")

    cleaned = [clean_person_name(n) if isinstance(n, str) else n for n in names]
    if cleaned != names:
        names = cleaned
        tags.append("cleaned-author-names")

    kept_names: list[str] = []
    kept_emails: list[str | None] = []
    seen: set[str] = set()
    dropped_blank = dropped_dup = False
    for n, e in zip(names, emails):
        if not isinstance(n, str) or not n.strip():
            dropped_blank = True
            continue
        key = name_key(n)
        if key in seen:
            dropped_dup = True
            # keep the earlier occurrence; salvage its email if missing
            if e is not None:
                idx = [name_key(k) for k in kept_names].index(key)
                if kept_emails[idx] is None:
                    kept_emails[idx] = e
            continue
        seen.add(key)
        kept_names.append(n)
        kept_emails.append(e)
    if dropped_blank:
        tags.append("dropped-blank-authors")
    if dropped_dup:
        tags.append("deduplicated-author-keys")

    title = paper.title
    if isinstance(title, str):
        stripped = clean_person_name(title)
        if stripped != title and stripped:
            title = stripped
            tags.append("cleaned-title")

    if not tags:
        return paper, ()
    return (
        dataclasses.replace(
            paper,
            title=title,
            author_names=tuple(kept_names),
            author_emails=tuple(kept_emails),
        ),
        tuple(tags),
    )


def repair_researcher(rec: ResearcherRecord) -> Repair:
    tags: list[str] = []
    full_name = rec.full_name
    if isinstance(full_name, str):
        cleaned = clean_person_name(full_name)
        if cleaned != full_name and cleaned:
            full_name = cleaned
            tags.append("cleaned-name")
    key = name_key(full_name) if isinstance(full_name, str) else rec.name_key
    if key != rec.name_key:
        tags.append("rekeyed")
    emails = [e for e in rec.emails if isinstance(e, str) and e.count("@") == 1]
    if emails != rec.emails:
        tags.append("dropped-malformed-emails")
    if not tags:
        return rec, ()
    from repro.pipeline.link import ResearcherRecord

    repaired = ResearcherRecord(
        researcher_id=rec.researcher_id,
        full_name=full_name,
        name_key=key,
        emails=emails,
        roles=list(rec.roles),
    )
    return repaired, tuple(tags)


def repair_enrichment(e: Enrichment) -> Repair:
    tags: list[str] = []
    changes: dict[str, Any] = {}
    for fld in (
        "gs_publications",
        "gs_h_index",
        "gs_i10",
        "gs_citations",
        "s2_publications",
    ):
        value = getattr(e, fld)
        if value is not None and value < 0:
            # a negative counter is transmission damage, not information
            changes[fld] = None
            tags.append(f"nulled-negative:{fld}")
    if e.country_code is not None and isinstance(e.country_code, str):
        upper = e.country_code.strip().upper()
        if upper != e.country_code and len(upper) == 2:
            changes["country_code"] = upper
            tags.append("uppercased-country")
    if not tags:
        return e, ()
    return dataclasses.replace(e, **changes), tuple(tags)


def repair_assignment(a: GenderAssignment) -> Repair:
    tags: list[str] = []
    gender, method, confidence = a.gender, a.method, a.confidence

    if not isinstance(gender, Gender) or not isinstance(method, InferenceMethod):
        # unsalvageable provenance: reset to an honest "unassigned"
        return GenderAssignment.unassigned(), ("reset-to-unassigned",)

    if method is InferenceMethod.NONE and not math.isnan(confidence):
        confidence = float("nan")
        tags.append("nulled-confidence")
    elif method is not InferenceMethod.NONE:
        if math.isnan(confidence):
            return GenderAssignment.unassigned(), ("reset-to-unassigned",)
        if not 0.0 <= confidence <= 1.0:
            confidence = min(1.0, max(0.0, confidence))
            tags.append("clamped-confidence")

    if (method is InferenceMethod.NONE) != (gender is Gender.UNKNOWN):
        return GenderAssignment.unassigned(), ("reset-to-unassigned",)

    if not tags:
        return a, ()
    return GenderAssignment(gender, method, confidence), tuple(tags)
