"""Per-paper citation attractiveness, calibrated to Fig. 2.

Fig. 2's facts: 53 female-led and 435 male-led papers with known lead
gender; mean 36-month citations 13.04 (F, incl. one huge outlier) vs
10.55 (M); excluding the outlier the female mean drops to 7.63; 23% of
female-led and 38% of male-led papers reach i10 (≥ 10 citations).

We model attractiveness λ (expected 36-month citations) as lognormal per
lead-gender, with parameters solved so the mean and the P(λ ≥ 10) tail
land on the paper's values, plus one designated female-led outlier paper
whose λ is set so it shows ≈294 citations at 36 months (the value implied
by the paper's own means: 53·13.04 − 52·7.63) and crosses 450 by the
time of writing (~48 months).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LOGNORMAL_PARAMS", "OUTLIER_LAMBDA_36MO", "draw_attractiveness"]

#: (mu, sigma) of ln(λ) per lead gender. Solved against Fig. 2:
#: men:   mean ≈ 10.7, P(λ≥10) ≈ .35   → mu=ln(7.0), sigma=0.92
#: women: mean ≈ 8.6,  P(λ≥10) ≈ .28   → mu=ln(6.8), sigma=0.68
#: (women's sigma is tighter so the ~53-paper sample mean is stable)
LOGNORMAL_PARAMS: dict[str, tuple[float, float]] = {
    "M": (float(np.log(7.0)), 0.92),
    "F": (float(np.log(6.8)), 0.68),
}

#: The single female-led outlier's expected 36-month citations.
#: 53 × 13.04 − 52 × 7.63 ≈ 294 (the paper's ">450" is at ~4 years).
OUTLIER_LAMBDA_36MO: float = 294.0


def draw_attractiveness(
    lead_genders: list[str],
    rng: np.random.Generator,
    outlier_index: int | None = None,
) -> np.ndarray:
    """Draw λ for papers given their lead author's gender.

    ``lead_genders`` entries are 'F', 'M', or 'U' (unknown leads draw
    from the male parameters — they are overwhelmingly male in the
    data).  ``outlier_index`` designates the Fig. 2 outlier paper; it
    must have a female lead.
    """
    lam = np.empty(len(lead_genders), dtype=np.float64)
    for i, g in enumerate(lead_genders):
        mu, sigma = LOGNORMAL_PARAMS["F" if g == "F" else "M"]
        lam[i] = rng.lognormal(mean=mu, sigma=sigma)
    if outlier_index is not None:
        if lead_genders[outlier_index] != "F":
            raise ValueError("the designated outlier must be female-led (Fig. 2)")
        lam[outlier_index] = OUTLIER_LAMBDA_36MO
    return lam


def expected_mean(gender: str) -> float:
    """E[λ] implied by the lognormal parameters (for tests)."""
    mu, sigma = LOGNORMAL_PARAMS[gender]
    return float(np.exp(mu + sigma * sigma / 2.0))


def expected_i10_share(gender: str) -> float:
    """P(λ ≥ 10) implied by the parameters (for tests)."""
    from scipy import special

    mu, sigma = LOGNORMAL_PARAMS[gender]
    z = (np.log(10.0) - mu) / sigma
    return float(0.5 * special.erfc(z / np.sqrt(2.0)))
