"""The deterministic fault plan.

A :class:`FaultPlan` answers one question — "does the call ``(service,
key, attempt)`` fail, and how?" — from nothing but the fault seed, via
:func:`repro.util.rng.derive_seed`.  Because the decision is a pure
function of the call's *identity* rather than of execution order, the
same plan yields the same faults whether the pipeline runs serially, on
four workers, or resumes from a checkpoint: the property every
determinism test in this repo leans on.

The plan models the four failure modes the original study's data
collection was exposed to (flaky conference sites, genderize.io quotas,
Google Scholar's partial coverage): transient errors, timeouts, rate
limits, and malformed payloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import derive_seed
from repro.util.validation import check_fraction

__all__ = ["FaultKind", "RetryPolicy", "BreakerConfig", "FaultConfig", "FaultPlan"]


class FaultKind(enum.Enum):
    """How an injected call fails."""

    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    RATE_LIMIT = "rate-limit"
    MALFORMED = "malformed"


_KINDS: tuple[FaultKind, ...] = tuple(FaultKind)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter on a virtual clock.

    ``delay(attempt, ...)`` for attempts 1, 2, 3 … grows as
    ``base_delay * multiplier**(attempt-1)`` capped at ``max_delay``,
    multiplied by a jitter factor in ``[1-jitter, 1+jitter]`` drawn from
    the seed tree — so two runs back off identically, and no worker ever
    actually sleeps (the delay is charged to the
    :class:`~repro.util.timing.VirtualClock`).
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        check_fraction(self.jitter, "jitter")

    def delay(self, attempt: int, seed: int, *key: str | int) -> float:
        """The backoff charged after failed ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter <= 0.0:
            return raw
        u = np.random.default_rng(derive_seed(seed, "jitter", *key, attempt)).random()
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass(frozen=True)
class BreakerConfig:
    """Per-service circuit-breaker policy.

    The breaker opens after ``failure_threshold`` consecutive failures,
    fast-fails the next ``cooldown_calls`` calls, then half-opens and
    lets one probe through.  Counting calls instead of wall time keeps
    the breaker's behaviour a pure function of the call sequence.
    """

    failure_threshold: int = 5
    cooldown_calls: int = 20

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_calls < 1:
            raise ValueError("cooldown_calls must be >= 1")


@dataclass(frozen=True)
class FaultConfig:
    """Everything the fault layer needs; small, frozen, picklable.

    ``weights`` are relative odds of each :class:`FaultKind` (in enum
    order) once a call is chosen to fail.  ``timeout_cost`` and
    ``rate_limit_penalty`` are virtual seconds charged on top of backoff
    for the corresponding fault kinds, so the virtual clock reflects the
    latency profile a real run would have had.
    """

    rate: float = 0.0
    seed: int = 0
    weights: tuple[float, float, float, float] = (0.35, 0.2, 0.15, 0.3)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    timeout_cost: float = 10.0
    rate_limit_penalty: float = 2.0

    def __post_init__(self) -> None:
        check_fraction(self.rate, "rate")
        if len(self.weights) != len(_KINDS):
            raise ValueError(f"weights must have {len(_KINDS)} entries")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")


class FaultPlan:
    """Seed-derived oracle for fault decisions and payload corruption."""

    __slots__ = ("_config", "_probs")

    def __init__(self, config: FaultConfig) -> None:
        self._config = config
        total = float(sum(config.weights))
        self._probs = np.asarray([w / total for w in config.weights])

    @property
    def config(self) -> FaultConfig:
        return self._config

    def draw(self, service: str, *key: str | int, attempt: int = 1) -> FaultKind | None:
        """The fault (or None) injected into this exact call attempt."""
        cfg = self._config
        if cfg.rate <= 0.0:
            return None
        rng = np.random.default_rng(
            derive_seed(cfg.seed, "fault", service, *key, attempt)
        )
        if rng.random() >= cfg.rate:
            return None
        return _KINDS[int(rng.choice(len(_KINDS), p=self._probs))]

    def payload_rng(self, service: str, *key: str | int) -> np.random.Generator:
        """Generator driving payload corruption for a malformed call."""
        return np.random.default_rng(
            derive_seed(self._config.seed, "payload", service, *key)
        )
