"""The fault session: plan + retries + breakers + virtual clock + stats.

A :class:`FaultSession` is the one object a pipeline stage needs to make
resilient service calls.  Scoping is what keeps everything deterministic:

- the ingest stage creates **one session per harvest task**, so breaker
  state and virtual time cannot depend on which worker ran which task;
- the serial enrich/infer stages each use one session in the main
  process, where call order is already deterministic.

Per-task stats and losses are merged *in input order* by the caller
(:mod:`repro.pipeline.ingest`), never in completion order.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.faults.breaker import CircuitBreaker
from repro.faults.degradation import FaultStats, LossRecord
from repro.faults.errors import (
    CircuitOpenError,
    FaultError,
    MalformedPayloadError,
    RateLimitError,
    RetryExhaustedError,
    ServiceTimeout,
    TransientServiceError,
)
from repro.faults.plan import FaultConfig, FaultKind, FaultPlan
from repro.obs.context import current as _obs
from repro.util.timing import VirtualClock

__all__ = ["FaultSession"]

R = TypeVar("R")

_ERROR_BY_KIND = {
    FaultKind.TRANSIENT: TransientServiceError,
    FaultKind.TIMEOUT: ServiceTimeout,
    FaultKind.RATE_LIMIT: RateLimitError,
}


class FaultSession:
    """Executes service calls under the fault plan with full resilience."""

    def __init__(self, config: FaultConfig | None = None) -> None:
        self.config = config or FaultConfig()
        self.plan = FaultPlan(self.config)
        self.clock = VirtualClock()
        self.stats = FaultStats()
        self.losses: list[LossRecord] = []
        self._breakers: dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------ plumbing

    def breaker(self, service: str) -> CircuitBreaker:
        b = self._breakers.get(service)
        if b is None:
            b = self._breakers[service] = CircuitBreaker(service, self.config.breaker)
        return b

    def record_loss(self, stage: str, key: str, reason: str) -> None:
        self.losses.append(LossRecord(stage=stage, key=key, reason=reason))
        _obs().metrics.inc(f"faults.losses.{stage}")
        _obs().event("fault.loss", key, stage=stage, reason=reason)

    def _finish(self) -> None:
        """Fold clock and breaker state into the stats snapshot."""
        self.stats.virtual_time = self.clock.now
        self.stats.breaker_opens = sum(
            b.times_opened for b in self._breakers.values()
        )

    @property
    def snapshot(self) -> FaultStats:
        self._finish()
        return self.stats

    # ------------------------------------------------------------ the call

    def call(
        self,
        service: str,
        key: tuple,
        fn: Callable[[], R],
        malform: Callable[[R, object], R] | None = None,
        validate: Callable[[R], bool] | None = None,
    ) -> R:
        """Run ``fn`` under the plan; retry injected failures.

        ``malform`` — applied to the result when the plan injects a
        MALFORMED fault, given ``(result, payload_rng)``.  Without a
        ``validate`` that rejects the corruption, the corrupted payload
        is *returned* (the harvest case: a broken page still parses,
        just worse).  With a rejecting ``validate`` it triggers a retry
        (the API-client case: garbage detected, request reissued).

        Raises :class:`RetryExhaustedError` or :class:`CircuitOpenError`;
        callers convert those into loss records and fallbacks.  Any
        non-:class:`FaultError` from ``fn`` propagates untouched.
        """
        policy = self.config.retry
        breaker = self.breaker(service)
        obs = _obs()
        metrics = obs.metrics
        last: FaultError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self.stats.retries += 1
                metrics.inc("faults.retries")
                obs.event("fault.retry", service, attempt=attempt)
            try:
                breaker.check()
            except CircuitOpenError:
                self.stats.breaker_rejections += 1
                metrics.inc("faults.breaker_rejections")
                raise
            self.stats.count_call(service)
            metrics.inc(f"faults.calls.{service}")
            kind = self.plan.draw(service, *key, attempt=attempt)
            if kind in _ERROR_BY_KIND:
                self.stats.count_fault(kind.value)
                metrics.inc(f"faults.injected.{kind.value}")
                obs.event("fault.injected", service, kind=kind.value)
                if kind is FaultKind.TIMEOUT:
                    self.clock.sleep(self.config.timeout_cost)
                elif kind is FaultKind.RATE_LIMIT:
                    self.clock.sleep(self.config.rate_limit_penalty)
                last = _ERROR_BY_KIND[kind](service, key, f"attempt {attempt}")
                self._backoff(breaker, policy, service, key, attempt)
                continue
            result = fn()
            if kind is FaultKind.MALFORMED:
                self.stats.count_fault(kind.value)
                metrics.inc(f"faults.injected.{kind.value}")
                obs.event("fault.injected", service, kind=kind.value)
                if malform is not None:
                    result = malform(result, self.plan.payload_rng(service, *key, attempt))
            if validate is not None and not validate(result):
                last = MalformedPayloadError(service, key, f"attempt {attempt}")
                self._backoff(breaker, policy, service, key, attempt)
                continue
            breaker.record_success()
            return result
        self.stats.exhausted += 1
        metrics.inc("faults.exhausted")
        obs.event("fault.exhausted", service, attempts=policy.max_attempts)
        raise RetryExhaustedError(service, key, policy.max_attempts, last)

    def _backoff(self, breaker, policy, service, key, attempt) -> None:
        opened_before = breaker.times_opened
        breaker.record_failure()
        if breaker.times_opened > opened_before:
            _obs().metrics.inc("faults.breaker_opens")
            _obs().event("fault.breaker_open", service)
        if attempt < policy.max_attempts:
            self.clock.sleep(policy.delay(attempt, self.config.seed, service, *key))
