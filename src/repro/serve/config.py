"""Configuration of the analysis service.

One frozen :class:`ServeConfig` carries everything ``repro serve``
needs: the bind address, the default query world (seed/scale), the
engine cache backing warm queries, and — the robustness surface — the
admission bounds, the per-request deadline, the circuit-breaker policy
for poisoned configs, and an optional deterministic chaos plan injected
behind the request handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.faults.chaos import ChaosConfig
from repro.faults.plan import BreakerConfig

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything the serving layer needs; small, frozen, picklable.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (the server
        announces the bound one) — the spelling tests and benches use.
    seed / scale:
        Defaults for queries that omit ``?seed=``/``?scale=``.
    shards / shard_workers:
        When ``shards`` is set, analysis queries run the sharded
        streaming pipeline (:func:`repro.pipeline.sharded.run_sharded`)
        with that venue count instead of the monolithic engine DAG;
        ``shard_workers`` bounds concurrent shard execution.  Queries
        route through :meth:`repro.pipeline.config.RunConfig.for_query`,
        the same constructor the CLI uses, so the service cache and a
        ``repro --shards N run`` address identical entries.
    cache_dir:
        Content-addressed engine cache backing the cold path; ``None``
        still serves (every cold query recomputes) but forfeits the
        cross-process warm path.
    obs_dir:
        Root for observability artifacts; the serve session appends its
        record and event stream to ``<obs_dir>/ledger/`` on drain, and
        ``/v1/runs/<id>`` reads the same ledger back.
    max_concurrency:
        Requests allowed to execute analysis work at once.
    queue_depth:
        Requests allowed to *wait* for an execution slot.  A request
        arriving when the queue is full is shed immediately with
        HTTP 429 + ``Retry-After`` — admission is bounded by
        construction, so load cannot grow an unbounded backlog.
    deadline_s:
        Per-request budget.  A cold engine run that exceeds it answers
        504 with partial-result metadata (the run keeps going in the
        background and lands in the warm set for the retry).
        Requests may tighten — never extend — it via ``?deadline=``.
    retry_after_s:
        The ``Retry-After`` hint attached to 429/503/504 responses.
    max_scale:
        Upper bound accepted for ``?scale=`` (parameter validation, so
        one absurd query cannot occupy the pool for minutes).
    breaker:
        Circuit-breaker policy applied per *config fingerprint* around
        cold-path engine execution: a poisoned config degrades to fast
        503s instead of tying up the pool, while other configs (and the
        whole warm path) keep serving.
    chaos:
        Deterministic request-level fault injection
        (:class:`~repro.faults.chaos.ChaosConfig`).  Draws are keyed by
        request identity and per-identity ordinal, so two same-seed
        server sessions given the same request sequence produce
        byte-identical response bodies.
    drain_grace_s:
        How long a drain waits for in-flight requests before closing
        anyway.
    """

    host: str = "127.0.0.1"
    port: int = 8177
    seed: int = 7
    scale: float = 1.0
    shards: int | None = None
    shard_workers: int | None = None
    cache_dir: str | None = None
    obs_dir: str | None = "out/obs"
    max_concurrency: int = 4
    queue_depth: int = 16
    deadline_s: float = 15.0
    retry_after_s: float = 1.0
    max_scale: float = 4.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    chaos: ChaosConfig | None = None
    drain_grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0")
        if self.max_scale <= 0:
            raise ValueError("max_scale must be > 0")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")

    @classmethod
    def from_cli(cls, args: Any) -> "ServeConfig":
        """Build a serving configuration from a parsed CLI namespace."""

        def get(name: str, default: Any = None) -> Any:
            return getattr(args, name, default)

        chaos = None
        if get("chaos_rate", 0.0) > 0.0:
            chaos = ChaosConfig(
                rate=get("chaos_rate", 0.0),
                seed=(
                    get("chaos_seed")
                    if get("chaos_seed") is not None
                    else get("seed", 7)
                ),
            )
        return cls(
            host=get("host", "127.0.0.1"),
            port=get("port", 8177),
            seed=get("seed", 7),
            scale=get("scale", 1.0),
            shards=get("shards"),
            shard_workers=get("shard_workers"),
            cache_dir=get("cache_dir"),
            obs_dir=get("obs_dir", "out/obs"),
            max_concurrency=get("max_concurrency", 4),
            queue_depth=get("queue_depth", 16),
            deadline_s=get("deadline", 15.0),
            retry_after_s=get("retry_after", 1.0),
            chaos=chaos,
        )
