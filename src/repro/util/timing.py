"""Minimal wall-clock stage timing for the pipeline and benchmarks,
plus the virtual clock the resilience layer's backoff runs on."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["StageTimer", "VirtualClock"]


@dataclass
class VirtualClock:
    """A clock that only moves when told to.

    Retry backoff and rate-limit penalties "sleep" on this clock, so a
    faulted run is charged realistic latency without any process ever
    blocking — and the accumulated time is bit-identical across worker
    counts because each work item owns its own clock.
    """

    now: float = 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.now += seconds


@dataclass
class StageTimer:
    """Records named stage durations.

    Usage::

        timer = StageTimer()
        with timer.stage("harvest"):
            ...
        timer.durations["harvest"]  # seconds
    """

    durations: dict[str, float] = field(default_factory=dict)

    def stage(self, name: str) -> "_Stage":
        return _Stage(self, name)

    def total(self) -> float:
        return sum(self.durations.values())

    def report(self) -> str:
        lines = [f"{name:<20s} {secs * 1e3:9.2f} ms" for name, secs in self.durations.items()]
        lines.append(f"{'total':<20s} {self.total() * 1e3:9.2f} ms")
        return "\n".join(lines)


class _Stage:
    def __init__(self, timer: StageTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Stage":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        self._timer.durations[self._name] = (
            self._timer.durations.get(self._name, 0.0) + elapsed
        )
