"""Tests for name-keyed evidence projection."""

import pytest

from repro.confmodel import WorldRegistry
from repro.confmodel.conference import Conference, ConferenceEdition
from repro.confmodel.entities import Person
from repro.confmodel.policies import DiversityPolicy, ReviewPolicy
from repro.gender.model import Gender
from repro.gender.webevidence import EvidenceKind
from repro.harvest import build_name_keyed_evidence
from repro.names.parsing import name_key


def make_registry(people):
    reg = WorldRegistry()
    for p in people:
        reg.add_person(p)
    return reg


def person(pid, name, gender=Gender.F, ev=EvidenceKind.PRONOUN):
    return Person(
        person_id=pid, full_name=name, country_code="US", sector="EDU",
        true_gender=gender, web_evidence=ev, past_publications=0,
    )


class TestNameKeyedEvidence:
    def test_unique_name_passes_through(self):
        reg = make_registry([person("p1", "Ann Smith")])
        avail, truth = build_name_keyed_evidence(
            reg, {"p1": EvidenceKind.PRONOUN}, {"p1": Gender.F}
        )
        k = name_key("Ann Smith")
        assert avail[k] is EvidenceKind.PRONOUN
        assert truth[k] is Gender.F

    def test_collision_blanks_evidence(self):
        reg = make_registry(
            [person("p1", "Wei Zhang", Gender.F), person("p2", "Wei Zhang", Gender.M)]
        )
        avail, truth = build_name_keyed_evidence(
            reg,
            {"p1": EvidenceKind.PRONOUN, "p2": EvidenceKind.PHOTO},
            {"p1": Gender.F, "p2": Gender.M},
        )
        k = name_key("Wei Zhang")
        assert avail[k] is EvidenceKind.NONE
        assert truth[k] is Gender.UNKNOWN

    def test_accent_variants_collide(self):
        reg = make_registry(
            [person("p1", "Jose Garcia"), person("p2", "José García", Gender.M)]
        )
        avail, _ = build_name_keyed_evidence(
            reg,
            {"p1": EvidenceKind.PRONOUN, "p2": EvidenceKind.PRONOUN},
            {"p1": Gender.F, "p2": Gender.M},
        )
        assert avail[name_key("Jose Garcia")] is EvidenceKind.NONE

    def test_missing_maps_default_none(self):
        reg = make_registry([person("p1", "Solo Name")])
        avail, truth = build_name_keyed_evidence(reg, {}, {})
        k = name_key("Solo Name")
        assert avail[k] is EvidenceKind.NONE
        assert truth[k] is Gender.UNKNOWN
