"""Hierarchical deterministic random streams.

Every random decision in the library draws from a named stream derived from
a single root seed.  Streams are independent of one another, and the
derivation is stable across processes and platforms, which is what makes
the parallel pipeline reproducible: each work item derives its own stream
from ``(root_seed, item_key)`` so the result does not depend on which
worker handles the item or in what order.

Derivation uses SHA-256 over the UTF-8 key path rather than
``SeedSequence.spawn`` so that a stream's identity is a *name*, not a call
order.  Adding a new consumer of randomness never perturbs existing
streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RngStream"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *path: str | int) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a key path.

    The same ``(root_seed, path)`` always produces the same seed; distinct
    paths produce independent seeds (collision probability ~2**-64).

    Parameters
    ----------
    root_seed:
        The experiment's root seed (any Python int).
    path:
        A sequence of string/int components naming the stream, e.g.
        ``("harvest", "SC", 2017)``.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode("utf-8"))
    for part in path:
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        h.update(str(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def spawn_rng(root_seed: int, *path: str | int) -> np.random.Generator:
    """Return a NumPy ``Generator`` for the named stream."""
    return np.random.default_rng(derive_seed(root_seed, *path))


class RngStream:
    """A named node in the seed tree that can spawn child streams.

    ``RngStream`` wraps a root seed and a path prefix.  Call
    :meth:`child` to descend, :meth:`generator` to materialize a NumPy
    generator for the current node.

    Examples
    --------
    >>> root = RngStream(42)
    >>> g1 = root.child("population").generator()
    >>> g2 = root.child("population").generator()
    >>> float(g1.random()) == float(g2.random())
    True
    """

    __slots__ = ("_root_seed", "_path")

    def __init__(self, root_seed: int, path: Iterable[str | int] = ()) -> None:
        self._root_seed = int(root_seed)
        self._path: tuple[str | int, ...] = tuple(path)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    @property
    def path(self) -> tuple[str | int, ...]:
        return self._path

    def child(self, *parts: str | int) -> "RngStream":
        """Return the stream at ``path + parts``."""
        return RngStream(self._root_seed, self._path + parts)

    def seed(self) -> int:
        """The 64-bit seed of this node."""
        return derive_seed(self._root_seed, *self._path)

    def generator(self) -> np.random.Generator:
        """A fresh NumPy generator seeded for this node."""
        return np.random.default_rng(self.seed())

    def integers(self, low: int, high: int, size: int | None = None):
        """Convenience: one-shot integer draw from a fresh generator."""
        return self.generator().integers(low, high, size=size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        joined = "/".join(str(p) for p in self._path)
        return f"RngStream(seed={self._root_seed}, path='{joined}')"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RngStream):
            return NotImplemented
        return (self._root_seed, self._path) == (other._root_seed, other._path)

    def __hash__(self) -> int:
        return hash((self._root_seed, self._path))
