"""Scaling robustness: the generator must hold at above-paper scales."""

import pytest

from repro.calibration.targets import TOTALS
from repro.confmodel.roles import Role
from repro.synth import WorldConfig, build_world


class TestScaleUp:
    @pytest.fixture(scope="class")
    def big_world(self):
        return build_world(WorldConfig(seed=5, scale=1.5, include_timeline=False))

    def test_structure_scales_linearly(self, big_world):
        reg = big_world.registry
        papers = len(reg.papers)
        assert papers == pytest.approx(1.5 * TOTALS["papers"], rel=0.02)
        positions = sum(1 for r in reg.roles if r.role is Role.AUTHOR)
        assert positions == pytest.approx(
            1.5 * TOTALS["author_positions"], rel=0.02
        )

    def test_rates_preserved(self, big_world):
        from repro.gender.model import Gender

        reg = big_world.registry
        genders = [
            reg.people[r.person_id].true_gender
            for r in reg.roles
            if r.role is Role.AUTHOR
        ]
        far = sum(1 for g in genders if g is Gender.F) / len(genders)
        assert far == pytest.approx(TOTALS["far_overall"], abs=0.012)

    def test_validates(self, big_world):
        big_world.registry.validate()

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            WorldConfig(scale=0.001)
        with pytest.raises(ValueError):
            WorldConfig(scale=1001)
        # the sharded pipeline raised the ceiling from 10 to 1000
        WorldConfig(scale=11)
