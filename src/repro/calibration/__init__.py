"""Calibration: the paper's published numbers and the fitting machinery.

- :mod:`repro.calibration.targets`   — every constant the paper prints
  (Table 1–3, the figures' headline statistics, coverage rates), plus the
  interpretation notes for ambiguous numbers.
- :mod:`repro.calibration.ipf`       — iterative proportional fitting
  (raking) used to build joint distributions consistent with several
  published marginals at once.
- :mod:`repro.calibration.allocate`  — quota allocation helpers that turn
  fractional targets into exact integer counts.

The synthetic world generator consumes these; the analyses never do
(they recompute everything from harvested data), which keeps the
reproduction honest.
"""

from repro.calibration.targets import (
    CONFERENCES_2017,
    ConferenceTargets,
    COUNTRY_TARGETS,
    CountryTarget,
    REGION_ROLE_TARGETS,
    RegionRoleTarget,
    SECTOR_SHARES,
    SECTOR_WOMEN_SHARE,
    EXPERIENCE_BANDS,
    PAPER_STATS,
    TOTALS,
    SC_ISC_TIMELINE,
)
from repro.calibration.ipf import ipf_fit, IPFResult
from repro.calibration.allocate import (
    split_women,
    allocate_counts,
    allocate_two_way,
)

__all__ = [
    "CONFERENCES_2017",
    "ConferenceTargets",
    "COUNTRY_TARGETS",
    "CountryTarget",
    "REGION_ROLE_TARGETS",
    "RegionRoleTarget",
    "SECTOR_SHARES",
    "SECTOR_WOMEN_SHARE",
    "EXPERIENCE_BANDS",
    "PAPER_STATS",
    "TOTALS",
    "SC_ISC_TIMELINE",
    "ipf_fit",
    "IPFResult",
    "split_women",
    "allocate_counts",
    "allocate_two_way",
]
