"""Tests for quota allocation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.calibration import allocate_counts, allocate_two_way, split_women


class TestSplitWomen:
    def test_rounding(self):
        assert split_women(100, 0.099) == (10, 90)
        assert split_women(99, 0.0577) == (6, 93)

    def test_extremes(self):
        assert split_women(10, 0.0) == (0, 10)
        assert split_women(10, 1.0) == (10, 0)
        assert split_women(0, 0.5) == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_women(-1, 0.5)
        with pytest.raises(ValueError):
            split_women(10, 1.5)

    @given(st.integers(0, 10_000), st.floats(0, 1))
    def test_parts_sum(self, total, far):
        w, m = split_women(total, far)
        assert w + m == total and w >= 0 and m >= 0


class TestTwoWay:
    def test_exact_row_sums(self):
        t = allocate_two_way(np.array([7.0, 3.0]), np.array([5.0, 5.0]))
        assert t.sum(axis=1).tolist() == [7, 3]
        assert t.sum() == 10

    def test_column_sums_close(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(5, 50, size=8).astype(float)
        cols = np.array([rows.sum() * 0.1, rows.sum() * 0.9])
        t = allocate_two_way(rows, cols)
        assert np.abs(t.sum(axis=0) - cols).max() <= len(rows) / 2 + 1

    def test_seed_steers_interaction(self):
        rows = np.array([50.0, 50.0])
        cols = np.array([50.0, 50.0])
        seed = np.array([[10.0, 1.0], [1.0, 10.0]])
        t = allocate_two_way(rows, cols, seed=seed)
        assert t[0, 0] > t[0, 1]

    def test_total_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allocate_two_way(np.array([5.0]), np.array([4.0]))

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            allocate_two_way(np.array([0.0]), np.array([0.0]))


def test_allocate_counts_delegates():
    out = allocate_counts([1, 1, 2], 8)
    assert out.tolist() == [2, 2, 4]
