"""Tests for hash joins."""

import numpy as np
import pytest

from repro.tabular import Table, inner_join, left_join


@pytest.fixture
def people():
    return Table({"pid": ["a", "b", "c"], "gender": ["F", "M", "M"]})


@pytest.fixture
def papers():
    return Table({"pid": ["a", "a", "c", "x"], "cites": [10, 3, 5, 1]})


class TestInnerJoin:
    def test_many_to_many(self, people, papers):
        out = inner_join(papers, people, on="pid")
        assert out.num_rows == 3  # 'x' drops
        assert out["gender"].tolist() == ["F", "F", "M"]

    def test_suffix_on_conflict(self):
        a = Table({"k": [1], "v": ["l"]})
        b = Table({"k": [1], "v": ["r"]})
        out = inner_join(a, b, on="k")
        assert set(out.columns) == {"k", "v", "v_right"}

    def test_empty_result(self):
        a = Table({"k": [1]})
        b = Table({"k": [2], "w": [9]})
        assert inner_join(a, b, on="k").num_rows == 0

    def test_multi_key(self):
        a = Table({"x": [1, 1], "y": ["p", "q"], "v": [10, 20]})
        b = Table({"x": [1], "y": ["q"], "w": [7]})
        out = inner_join(a, b, on=["x", "y"])
        assert out.num_rows == 1
        assert out["v"].tolist() == [20]


class TestLeftJoin:
    def test_unmatched_get_missing(self, papers, people):
        out = left_join(papers, people, on="pid")
        assert out.num_rows == 4
        assert out["gender"].tolist() == ["F", "F", "M", None]

    def test_int_promotes_to_float_with_missing(self):
        left = Table({"k": ["a", "b"]})
        right = Table({"k": ["a"], "n": [5]})
        out = left_join(left, right, on="k")
        assert out.col("n").kind == "float"
        assert np.isnan(out["n"][1])

    def test_int_stays_int_when_all_match(self):
        left = Table({"k": ["a"]})
        right = Table({"k": ["a"], "n": [5]})
        out = left_join(left, right, on="k")
        assert out.col("n").kind == "int"

    def test_duplicate_right_keys_rejected(self):
        left = Table({"k": [1]})
        right = Table({"k": [1, 1], "v": [1, 2]})
        with pytest.raises(ValueError, match="duplicate"):
            left_join(left, right, on="k")
