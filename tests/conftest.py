"""Shared fixtures.

Two worlds are built once per session:

- ``small_world`` / ``small_result`` — scale 0.25, used by most unit and
  integration tests (fast to build, still has every structure);
- ``full_result`` — scale 1.0 with the paper's exact population sizes,
  used by the reproduction-accuracy tests.
"""

from __future__ import annotations

import pytest

from repro.pipeline import run_pipeline
from repro.synth import WorldConfig, build_world


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    return WorldConfig(seed=11, scale=0.25)


@pytest.fixture(scope="session")
def small_world(small_config):
    return build_world(small_config)


@pytest.fixture(scope="session")
def small_result(small_world):
    return run_pipeline(world=small_world)


@pytest.fixture(scope="session")
def full_config() -> WorldConfig:
    return WorldConfig(seed=7, scale=1.0)


@pytest.fixture(scope="session")
def full_world(full_config):
    return build_world(full_config)


@pytest.fixture(scope="session")
def full_result(full_world):
    return run_pipeline(world=full_world)
