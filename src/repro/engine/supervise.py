"""Supervised node execution: retries, deadlines, failure isolation.

The bare executor treats any node exception as fatal — correct for a
deterministic in-process pipeline, wrong for the long multi-venue runs
the ROADMAP points at, where a single flaky stage body or hung worker
would throw away hours of completed work.  This module gives every
:class:`~repro.engine.node.StageNode` an execution policy:

- **bounded retries** with the exponential-backoff-plus-jitter
  discipline of :class:`repro.faults.plan.RetryPolicy`, charged to a
  :class:`~repro.util.timing.VirtualClock` so no process ever sleeps
  and the accumulated backoff is identical across worker counts;
- **per-node deadlines**, enforced two ways: *virtually* for chaos
  hangs (the plan never blocks, the clock is charged what a watchdog
  would have waited), and by a *wall watchdog* (:func:`watchdog_map`)
  when real worker processes might genuinely wedge;
- **failure isolation**: a node that exhausts its attempts is recorded
  in ``EngineRun.failed`` and only its downstream artifacts are marked
  skipped — independent branches of the generation keep executing.

The supervisor also carries the optional :class:`ChaosPlan` that
injects deterministic engine-level faults (see
:mod:`repro.faults.chaos`), so the retry/isolation machinery is proved
by the same seed discipline it is built on.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.faults.chaos import ChaosConfig, ChaosKind, ChaosPlan, corrupt_bytes
from repro.faults.plan import RetryPolicy
from repro.obs.context import ObsEnvelope
from repro.obs.context import current as _obs_current

# the error-capture / per-item obs-capture wrappers are deliberately
# shared with parallel_map: watchdog_map must produce the same TaskError
# values and adopt envelopes under the same input-order discipline
from repro.util.parallel import TaskError, _CaptureErrors, _ObsTask
from repro.util.timing import VirtualClock

__all__ = [
    "NodePolicy",
    "SupervisorConfig",
    "Supervisor",
    "IncompleteRunError",
    "watchdog_map",
    "DEADLINE_ERROR",
]

#: the TaskError kind a watchdog (wall or virtual) produces for a hung node
DEADLINE_ERROR = "NodeDeadlineExceeded"


@dataclass(frozen=True)
class NodePolicy:
    """How one node is allowed to fail.

    ``max_attempts`` bounds executions (1 = no retries); ``backoff``
    prices the virtual-clock delay between attempts; ``deadline`` is
    the per-attempt time budget in seconds (``None`` = unbounded) —
    charged virtually for chaos hangs, enforced on the wall clock by
    :func:`watchdog_map` when the generation runs on worker processes.
    """

    max_attempts: int = 3
    backoff: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")


@dataclass(frozen=True)
class SupervisorConfig:
    """Execution policies for a DAG run: one default, per-node overrides.

    Frozen and picklable like every other config; ``overrides`` is a
    tuple of ``(node_name, policy)`` pairs rather than a dict so the
    dataclass stays hashable.  ``seed`` feeds the backoff jitter.
    """

    default: NodePolicy = field(default_factory=NodePolicy)
    overrides: tuple[tuple[str, NodePolicy], ...] = ()
    seed: int = 0

    def policy(self, node: str) -> NodePolicy:
        for name, pol in self.overrides:
            if name == node:
                return pol
        return self.default


class IncompleteRunError(RuntimeError):
    """A supervised run finished but required artifacts are missing.

    Raised by the pipeline runner when failure isolation kept the DAG
    alive but a failed/skipped node owned an artifact the
    :class:`~repro.pipeline.runner.PipelineResult` cannot exist
    without.  Carries the full accounting so callers can report what
    was lost without re-running.
    """

    def __init__(
        self,
        failed: dict[str, str],
        skipped: dict[str, str],
        missing: Sequence[str] = (),
    ) -> None:
        self.failed = dict(failed)
        self.skipped = dict(skipped)
        self.missing = tuple(missing)
        parts = []
        if failed:
            parts.append(
                "failed: "
                + ", ".join(f"{n} ({r})" for n, r in sorted(failed.items()))
            )
        if skipped:
            parts.append("skipped: " + ", ".join(sorted(skipped)))
        if missing:
            parts.append("missing artifacts: " + ", ".join(sorted(missing)))
        super().__init__(
            "supervised run is incomplete — " + "; ".join(parts or ("unknown",))
        )


class Supervisor:
    """Runtime state of one supervised DAG execution.

    Owns the virtual clock that prices backoff and hangs, the retry /
    timeout counters that flow into ``EngineRun``, and (optionally) the
    chaos plan injecting deterministic faults.
    """

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        chaos: ChaosConfig | ChaosPlan | None = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        if isinstance(chaos, ChaosConfig):
            chaos = ChaosPlan(chaos)
        self.chaos = chaos
        self.clock = VirtualClock()
        self.retries = 0
        self.timeouts = 0

    # -------------------------------------------------------------- policies

    def policy(self, node: str) -> NodePolicy:
        return self.config.policy(node)

    # ----------------------------------------------------------------- chaos

    def draw_node(self, node: str, attempt: int) -> ChaosKind | None:
        if self.chaos is None:
            return None
        return self.chaos.draw_node(node, attempt)

    def draw_write(self, node: str, key: str) -> ChaosKind | None:
        if self.chaos is None:
            return None
        return self.chaos.draw_write(node, key)

    def corrupt_entry(self, path: Path, node: str, key: str, kind: ChaosKind) -> None:
        """Damage a just-written cache entry the way a crash would.

        The entry was written atomically, so the corruption is applied
        *after* the rename — modelling a torn write / media fault that a
        later run must detect and quarantine, not one this run sees.
        """
        assert self.chaos is not None
        data = path.read_bytes()
        path.write_bytes(corrupt_bytes(data, kind, self.chaos.write_rng(node, key)))

    # --------------------------------------------------------------- charging

    def charge_backoff(self, node: str, attempt: int) -> float:
        """Charge the post-``attempt`` backoff to the clock; count a retry."""
        delay = self.policy(node).backoff.delay(
            attempt, self.config.seed, "node", node
        )
        self.clock.sleep(delay)
        self.retries += 1
        return delay

    def charge_hang(self, node: str) -> float:
        """Charge what a watchdog would have waited on a hung node."""
        pol = self.policy(node)
        cost = pol.deadline
        if cost is None:
            cost = self.chaos.config.hang_cost if self.chaos is not None else 30.0
        self.clock.sleep(cost)
        self.timeouts += 1
        return cost


def watchdog_map(
    fn: Callable,
    items: Sequence,
    deadlines: Sequence[float | None],
    workers: int,
    capture_errors: bool = True,
) -> list:
    """``parallel_map`` with a wall-clock deadline per item.

    Results come back in input order; an item whose worker is still
    running when its deadline expires yields a
    ``TaskError(kind=DEADLINE_ERROR)`` in its slot and its future is
    abandoned (``cancel_futures`` on shutdown — a genuinely wedged
    worker process cannot be reasoned with, only cut loose).  Other
    items are unaffected: the watchdog is per-task, not per-pool.

    Obs capture follows the ``parallel_map`` discipline — per-item
    envelopes adopted in input order — except that a timed-out item
    contributes no events (its worker never reported back).  Wall
    deadlines are inherently nondeterministic; deterministic runs get
    their timeouts from the chaos plan's *virtual* hangs instead.
    """
    seq = list(items)
    if len(deadlines) != len(seq):
        raise ValueError("deadlines must align with items")
    if not seq:
        return []
    if capture_errors:
        fn = _CaptureErrors(fn)
    ctx = _obs_current()
    observed = ctx.enabled
    if observed:
        path = ctx.tracer.current_path() + ("watchdog_map",)
        mapped: Callable = _ObsTask(fn, ctx.tracer.seed, path)
        work: Sequence = list(enumerate(seq))
    else:
        mapped = fn
        work = seq

    results: list[Any] = [None] * len(seq)
    pool = ProcessPoolExecutor(max_workers=min(max(1, workers), len(seq)))
    try:
        index_of = {pool.submit(mapped, w): i for i, w in enumerate(work)}
        start = time.monotonic()
        outstanding = set(index_of)
        while outstanding:
            now = time.monotonic() - start
            budgets = [
                deadlines[index_of[f]] - now
                for f in outstanding
                if deadlines[index_of[f]] is not None
            ]
            timeout = max(0.0, min(budgets)) if budgets else None
            done, outstanding = wait(
                outstanding, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for f in done:
                results[index_of[f]] = f.result()
            now = time.monotonic() - start
            expired = {
                f
                for f in outstanding
                if deadlines[index_of[f]] is not None
                and now >= deadlines[index_of[f]]
            }
            for f in expired:
                i = index_of[f]
                f.cancel()
                results[i] = TaskError(
                    kind=DEADLINE_ERROR,
                    message=(
                        f"task {i} exceeded its {deadlines[i]:g}s deadline"
                    ),
                )
            outstanding -= expired
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    if not observed:
        return results
    unwrapped: list[Any] = []
    for env in results:
        if isinstance(env, ObsEnvelope):
            ctx.tracer.adopt(env.spans, tid=len(unwrapped) + 1)
            ctx.metrics.merge(env.metrics)
            ctx.events.adopt(env.events)
            unwrapped.append(env.result)
        else:  # timed out: a bare TaskError, no envelope to graft
            unwrapped.append(env)
    return unwrapped
