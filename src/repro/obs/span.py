"""Hierarchical trace spans with deterministic identities.

A :class:`Tracer` records a tree of timed spans around pipeline work::

    tracer = Tracer(seed=7)
    with tracer.span("ingest"):
        with tracer.span("harvest.edition", conf="SC", year=2017):
            ...

Span *identities* are deterministic: an ID is derived (SHA-256, the same
scheme as :func:`repro.util.rng.derive_seed`, re-implemented here so this
package stays stdlib-only and import-cycle-free) from the tracer seed,
the span's name path from the root, and a per-path occurrence counter.
Two runs with the same seed produce the same span IDs in the same
parent/child arrangement; only the timings differ.  That is what makes
trace output *testable* rather than write-only.

Span *timings* come from the monotonic clock (``time.perf_counter``),
expressed as offsets from the tracer's epoch so they can be exported
directly as Chrome trace-event timestamps.

Spans recorded inside ``parallel_map`` worker processes are captured by
a per-task child tracer (seeded from ``(seed, path, item_index)``, so
IDs cannot depend on which worker ran the task) and grafted back under
the parent's active span with :meth:`Tracer.adopt` — in input order,
like every other per-task artifact in this codebase.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Span", "Tracer", "NullTracer", "derive_span_seed", "chrome_trace"]

_MASK64 = (1 << 64) - 1


def derive_span_seed(seed: int, *path: str | int) -> int:
    """Stdlib twin of :func:`repro.util.rng.derive_seed` (same digest)."""
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("utf-8"))
    for part in path:
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        h.update(str(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


@dataclass
class Span:
    """One finished (or in-flight) unit of traced work."""

    span_id: str
    parent_id: str | None
    name: str
    path: tuple[str, ...]
    start: float                      # seconds since the tracer epoch
    duration: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    tid: int = 0                      # Chrome track; workers get their own

    def identity(self) -> tuple:
        """Everything deterministic about the span (timings excluded)."""
        return (
            self.span_id,
            self.parent_id,
            self.name,
            self.path,
            tuple(sorted(self.attrs.items())),
        )


class _ActiveSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> None:
        self._tracer._close(self.span)


class Tracer:
    """Records a deterministic tree of spans for one run."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._seq: dict[tuple[str, ...], int] = {}
        self._epoch = time.perf_counter()
        # optional hooks (set by ObsContext) mirroring span boundaries
        # into the unified event log; called with the Span
        self.on_open: Any = None
        self.on_close: Any = None

    # ------------------------------------------------------------- recording

    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        parent = self._stack[-1] if self._stack else None
        path = (parent.path if parent else ()) + (name,)
        seq = self._seq.get(path, 0)
        self._seq[path] = seq + 1
        span = Span(
            span_id=f"{derive_span_seed(self.seed, *path, seq):016x}",
            parent_id=parent.span_id if parent else None,
            name=name,
            path=path,
            start=self.now(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        if self.on_open is not None:
            self.on_open(span)
        return _ActiveSpan(self, span)

    def _close(self, span: Span) -> None:
        span.duration = self.now() - span.start
        top = self._stack.pop()
        assert top is span, f"span {top.name!r} closed out of order"
        self.finished.append(span)
        if self.on_close is not None:
            self.on_close(span)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op at root)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # ----------------------------------------------------------- inspection

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def current_path(self) -> tuple[str, ...]:
        return self._stack[-1].path if self._stack else ()

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.finished if s.name == name]

    def identity(self) -> tuple:
        """Deterministic fingerprint of the whole finished trace."""
        return tuple(sorted(s.identity() for s in self.finished))

    # -------------------------------------------------------------- merging

    def adopt(self, spans: Iterable[Span], tid: int = 0) -> None:
        """Graft finished worker spans under the current open span.

        Roots among ``spans`` are re-parented to the active span, every
        span is shifted onto this tracer's clock (placed at the adoption
        instant — cross-process clock offsets are not meaningful), and
        assigned ``tid`` so each task renders as its own Chrome track.
        """
        spans = list(spans)
        if not spans:
            return
        parent = self._stack[-1] if self._stack else None
        shift = self.now() - min(s.start for s in spans)
        for s in spans:
            if s.parent_id is None and parent is not None:
                s.parent_id = parent.span_id
                s.path = parent.path + s.path
            s.start += shift
            s.tid = tid
            self.finished.append(s)


class NullTracer:
    """No-op tracer: a single shared instance backs the disabled path."""

    seed = 0
    finished: list[Span] = []

    class _Null:
        __slots__ = ()

        def __enter__(self):
            return None

        def __exit__(self, *exc) -> None:
            return None

    _NULL_CM = _Null()

    def span(self, name: str, **attrs: Any):
        return self._NULL_CM

    def annotate(self, **attrs: Any) -> None:
        return None

    def adopt(self, spans: Iterable[Span], tid: int = 0) -> None:
        return None

    def current_path(self) -> tuple[str, ...]:
        return ()


# ------------------------------------------------------------ chrome export


def chrome_trace(tracer: Tracer, label: str = "repro") -> dict:
    """Render finished spans as a Chrome trace-event document.

    The result loads directly in ``chrome://tracing`` / Perfetto:
    complete events (``ph: "X"``) with microsecond timestamps, one track
    per worker task, span/parent IDs preserved in ``args``.
    """
    events = []
    for s in sorted(tracer.finished, key=lambda s: (s.tid, s.start)):
        args = {"span_id": s.span_id, "parent_id": s.parent_id}
        args.update(s.attrs)
        events.append(
            {
                "name": s.name,
                "cat": s.path[0] if s.path else s.name,
                "ph": "X",
                "ts": round(s.start * 1e6, 3),
                "dur": round(s.duration * 1e6, 3),
                "pid": 0,
                "tid": s.tid,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "seed": tracer.seed},
    }


def dumps_chrome_trace(tracer: Tracer, label: str = "repro") -> str:
    return json.dumps(chrome_trace(tracer, label), indent=2, sort_keys=True)
