"""A minimal HTML subset: builder, tokenizer, element tree, queries.

The generated conference sites use a small, well-formed HTML subset
(nested elements, double-quoted attributes, text nodes, HTML entities
for ``& < >``), and this module implements both directions.  The parser
is a hand-rolled tokenizer + stack builder — not a full HTML5 parser,
but robust to the malformations the tests inject (unknown tags, extra
whitespace, missing optional attributes, comments).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["HtmlElement", "el", "render", "parse_html"]

_VOID_TAGS = frozenset({"br", "hr", "img", "meta", "link", "input"})

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ('"', "&quot;")]


def escape(text: str) -> str:
    for raw, enc in _ESCAPES:
        text = text.replace(raw, enc)
    return text


def unescape(text: str) -> str:
    for raw, enc in reversed(_ESCAPES):
        text = text.replace(enc, raw)
    return text


@dataclass
class HtmlElement:
    """An element node; children are elements or raw strings."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["HtmlElement | str"] = field(default_factory=list)

    # ----------------------------------------------------------- building

    def add(self, *children: "HtmlElement | str") -> "HtmlElement":
        self.children.extend(children)
        return self

    # ------------------------------------------------------------ queries

    @property
    def classes(self) -> frozenset[str]:
        return frozenset(self.attrs.get("class", "").split())

    def text(self) -> str:
        """Concatenated text of the subtree, whitespace-normalized."""
        parts: list[str] = []

        def walk(node: "HtmlElement | str") -> None:
            if isinstance(node, str):
                parts.append(node)
            else:
                for c in node.children:
                    walk(c)

        walk(self)
        return re.sub(r"\s+", " ", "".join(parts)).strip()

    def iter(self) -> Iterator["HtmlElement"]:
        """Depth-first iteration over element nodes (self included)."""
        yield self
        for c in self.children:
            if isinstance(c, HtmlElement):
                yield from c.iter()

    def find_all(
        self, tag: str | None = None, cls: str | None = None
    ) -> list["HtmlElement"]:
        """All descendants (self included) matching tag and/or class."""
        out = []
        for node in self.iter():
            if tag is not None and node.tag != tag:
                continue
            if cls is not None and cls not in node.classes:
                continue
            out.append(node)
        return out

    def find(self, tag: str | None = None, cls: str | None = None) -> "HtmlElement | None":
        hits = self.find_all(tag, cls)
        return hits[0] if hits else None


def el(tag: str, *children: HtmlElement | str, **attrs: str) -> HtmlElement:
    """Element constructor: ``el("div", "text", cls="row")``.

    The keyword ``cls`` maps to the ``class`` attribute.
    """
    mapped = {("class" if k == "cls" else k): v for k, v in attrs.items()}
    return HtmlElement(tag, mapped, list(children))


def render(node: HtmlElement | str, indent: int = 0) -> str:
    """Serialize a tree to HTML text."""
    if isinstance(node, str):
        return escape(node)
    attrs = "".join(f' {k}="{escape(v)}"' for k, v in node.attrs.items())
    if node.tag in _VOID_TAGS:
        return f"<{node.tag}{attrs}/>"
    inner = "".join(render(c) for c in node.children)
    return f"<{node.tag}{attrs}>{inner}</{node.tag}>"


# ---------------------------------------------------------------- parsing

_TOKEN = re.compile(
    r"<!--.*?-->"                 # comments (dropped)
    r"|<!/?[A-Za-z][^>]*>"        # doctype-ish (dropped)
    r"|</\s*([A-Za-z][\w-]*)\s*>"  # closing tag
    r"|<\s*([A-Za-z][\w-]*)((?:\s+[^<>]*?)?)\s*(/?)>"  # opening (attrs lax)
    r"|([^<]+)",                  # text
    re.DOTALL,
)
_ATTR = re.compile(r'([\w-]+)\s*=\s*"([^"]*)"')


class HtmlParseError(ValueError):
    """Raised on mismatched tags or truncated input."""


def parse_html(text: str) -> HtmlElement:
    """Parse HTML text into a tree rooted at a synthetic ``#root``.

    Raises :class:`HtmlParseError` on mismatched close tags.  Unclosed
    tags at EOF are tolerated (auto-closed), as real scrapers must.
    """
    root = HtmlElement("#root")
    stack: list[HtmlElement] = [root]
    pos = 0
    for m in _TOKEN.finditer(text):
        if m.start() != pos:
            # stray '<' that matched nothing — treat as text
            stack[-1].children.append(text[pos : m.start()])
        pos = m.end()
        close_tag, open_tag, attr_text, self_close, raw_text = m.groups()
        if raw_text is not None:
            # whitespace-only text *inside* an element is content and
            # must survive a render/parse roundtrip; at document level
            # it is formatting and is dropped
            if raw_text.strip() or len(stack) > 1:
                stack[-1].children.append(unescape(raw_text))
        elif open_tag is not None:
            attrs = {k: unescape(v) for k, v in _ATTR.findall(attr_text or "")}
            node = HtmlElement(open_tag.lower(), attrs)
            stack[-1].children.append(node)
            if not self_close and open_tag.lower() not in _VOID_TAGS:
                stack.append(node)
        elif close_tag is not None:
            name = close_tag.lower()
            # pop until match; tolerate interleaving by auto-closing
            names = [n.tag for n in stack[1:]]
            if name not in names:
                raise HtmlParseError(f"unmatched closing tag </{name}>")
            while stack[-1].tag != name:
                stack.pop()
            stack.pop()
    if pos != len(text) and text[pos:].strip():
        stack[-1].children.append(text[pos:])
    return root
