"""Round-trip tests: every repair heuristic must re-validate clean.

The contract for a repair is *conservative convergence*: given a broken
record, the heuristic either returns a record the schema accepts (plus
the tags of what it changed) or leaves it for quarantine — and given a
clean record it changes nothing at all.
"""

from __future__ import annotations

import math

import pytest

from repro.contracts import (
    ASSIGNMENT_SCHEMA,
    EDITION_SCHEMA,
    ENRICHMENT_SCHEMA,
    PAPER_SCHEMA,
    RESEARCHER_SCHEMA,
    repair_assignment,
    repair_edition,
    repair_enrichment,
    repair_paper,
    repair_researcher,
)
from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.names.parsing import name_key
from repro.pipeline.enrich import Enrichment
from repro.pipeline.link import ResearcherRecord

from tests.contracts.test_schema import make_edition, make_paper

pytestmark = pytest.mark.contracts


class TestRepairEdition:
    def test_clean_is_untouched(self):
        conf = make_edition()
        repaired, tags = repair_edition(conf)
        assert repaired is conf and tags == ()

    def test_digit_reversed_year(self):
        repaired, tags = repair_edition(make_edition(year=7102))
        assert repaired.year == 2017 and "unreversed-year" in tags
        assert EDITION_SCHEMA.validate(repaired) == []

    def test_swapped_accept_counts(self):
        repaired, tags = repair_edition(
            make_edition(accepted=327, submitted=61)
        )
        assert (repaired.accepted, repaired.submitted) == (61, 327)
        assert "swapped-accept-counts" in tags
        assert EDITION_SCHEMA.validate(repaired) == []

    def test_nbsp_conference_name(self):
        repaired, tags = repair_edition(make_edition(conference="SC\u00a0"))
        assert repaired.conference == "SC" and "cleaned-conference-name" in tags

    def test_unrepairable_year_stays_broken(self):
        repaired, tags = repair_edition(make_edition(year=9999))
        assert repaired.year == 9999  # 9999 reversed is 9999: no fix
        assert EDITION_SCHEMA.validate(repaired) != []


class TestRepairPaper:
    def test_clean_is_untouched(self):
        paper = make_paper()
        repaired, tags = repair_paper(paper)
        assert repaired is paper and tags == ()

    def test_misaligned_emails(self):
        repaired, tags = repair_paper(make_paper(author_emails=("a@b.c",)))
        assert len(repaired.author_emails) == len(repaired.author_names)
        assert "realigned-emails" in tags
        assert PAPER_SCHEMA.validate(repaired) == []

    def test_duplicate_author_dropped_keeps_first_email(self):
        paper = make_paper(
            author_names=("Ada Lovelace", "ada  lovelace", "Grace Hopper"),
            author_emails=(None, "ada@x.edu", None),
        )
        repaired, tags = repair_paper(paper)
        assert "deduplicated-author-keys" in tags
        assert len(repaired.author_names) == 2
        # the duplicate's email was salvaged onto the kept occurrence
        assert repaired.author_emails[0] == "ada@x.edu"
        assert PAPER_SCHEMA.validate(repaired) == []

    def test_blank_author_dropped(self):
        paper = make_paper(
            author_names=("Ada Lovelace", "   "),
            author_emails=(None, None),
        )
        repaired, tags = repair_paper(paper)
        assert "dropped-blank-authors" in tags
        assert repaired.author_names == ("Ada Lovelace",)
        assert PAPER_SCHEMA.validate(repaired) == []

    def test_zero_width_in_author_names(self):
        paper = make_paper(
            author_names=("Ada​ Lovelace", "Grace Hopper"),
            author_emails=(None, None),
        )
        repaired, tags = repair_paper(paper)
        assert "cleaned-author-names" in tags
        assert repaired.author_names == ("Ada Lovelace", "Grace Hopper")

    def test_all_authors_blank_is_unrepairable(self):
        paper = make_paper(author_names=("", "  "), author_emails=(None, None))
        repaired, _tags = repair_paper(paper)
        assert PAPER_SCHEMA.validate(repaired) != []


class TestRepairResearcher:
    def test_rekey_after_cleanup(self):
        broken = ResearcherRecord("r1", "Ada\u200b Lovelace", "stale-key")
        repaired, tags = repair_researcher(broken)
        assert "rekeyed" in tags
        assert repaired.name_key == name_key(repaired.full_name)
        assert RESEARCHER_SCHEMA.validate(repaired) == []

    def test_malformed_emails_dropped(self):
        broken = ResearcherRecord(
            "r1", "Ada Lovelace", name_key("Ada Lovelace"),
            emails=["ada@x.edu", "not-an-email", "a@b@c"],
        )
        repaired, tags = repair_researcher(broken)
        assert "dropped-malformed-emails" in tags
        assert repaired.emails == ["ada@x.edu"]
        assert RESEARCHER_SCHEMA.validate(repaired) == []


class TestRepairEnrichment:
    def test_negative_counters_nulled(self):
        e = Enrichment("r1", "US", "amer", "EDU", -3, 1, 1, 10, 4)
        repaired, tags = repair_enrichment(e)
        assert repaired.gs_publications is None
        assert "nulled-negative:gs_publications" in tags
        # nulling pubs also disarms the h-le-pubs comparison
        assert ENRICHMENT_SCHEMA.validate(repaired) == []

    def test_lowercase_country_uppercased(self):
        e = Enrichment("r1", "us", "amer", "EDU", 5, 2, 1, 10, 4)
        repaired, tags = repair_enrichment(e)
        assert repaired.country_code == "US" and "uppercased-country" in tags
        assert ENRICHMENT_SCHEMA.validate(repaired) == []


class TestRepairAssignment:
    def test_clamped_confidence(self):
        a = GenderAssignment(Gender.F, InferenceMethod.GENDERIZE, 1.7)
        repaired, tags = repair_assignment(a)
        assert repaired.confidence == 1.0 and "clamped-confidence" in tags
        assert ASSIGNMENT_SCHEMA.validate(repaired) == []

    def test_broken_enum_resets_to_unassigned(self):
        a = GenderAssignment("F", InferenceMethod.MANUAL, 0.9)
        repaired, tags = repair_assignment(a)
        assert tags == ("reset-to-unassigned",)
        assert repaired.gender is Gender.UNKNOWN
        assert math.isnan(repaired.confidence)
        assert ASSIGNMENT_SCHEMA.validate(repaired) == []

    def test_stray_confidence_on_unassigned_nulled(self):
        a = GenderAssignment(Gender.UNKNOWN, InferenceMethod.NONE, 0.5)
        repaired, tags = repair_assignment(a)
        assert math.isnan(repaired.confidence) and "nulled-confidence" in tags
        assert ASSIGNMENT_SCHEMA.validate(repaired) == []

    def test_clean_is_untouched(self):
        a = GenderAssignment(Gender.M, InferenceMethod.MANUAL, 1.0)
        repaired, tags = repair_assignment(a)
        assert repaired is a and tags == ()
